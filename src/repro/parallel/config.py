"""Execution-backend selection for the sharded kernels.

A :class:`ParallelConfig` names *how* sharded work runs: how many
shards (``workers``), on which pool (``backend`` — ``"serial"``,
``"thread"`` or ``"process"``), and above which instance size sharding
is worth dispatching at all (``min_size``, defaulting to the
substrate's :data:`~repro.graphs.graph.SMALL_GRAPH_LIMIT` adaptive
threshold: below it the whole-array serial kernels already win, above
it the shard split amortizes).

Selection is layered the same way the substrate's adaptive dispatch is:

* every sharded entry point takes an optional ``parallel=`` config and
  resolves ``None`` to the **process-wide default** via
  :func:`resolve_config`;
* the process-wide default is read once from the environment —
  ``REPRO_WORKERS`` (shard/worker count; ``1`` or unset means serial)
  and ``REPRO_BACKEND`` (``serial`` / ``thread`` / ``process``,
  defaulting to ``thread`` when ``REPRO_WORKERS`` > 1) — so a whole
  run opts in with one variable (the CI tier-1 matrix runs the full
  suite under ``REPRO_WORKERS=2``);
* tests and benchmarks override the default explicitly with
  :func:`set_default_config` / :func:`use_config`.

The determinism contract: a config **never** changes results, only the
execution schedule. Every sharded kernel is golden-tested bit-identical
to its serial path (``tests/test_parallel_backend.py``), so flipping
``REPRO_WORKERS`` cannot change a single array element downstream.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Mapping

from repro.errors import GraphError

__all__ = [
    "BACKENDS",
    "ParallelConfig",
    "default_config",
    "resolve_config",
    "set_default_config",
    "use_config",
]

#: The recognized pool backends, in cost order.
BACKENDS = ("serial", "thread", "process")

#: Mirrors :data:`repro.graphs.graph.SMALL_GRAPH_LIMIT` (duplicated here
#: to keep this module import-light; asserted equal in the tests).
DEFAULT_MIN_SIZE = 8192


@dataclass(frozen=True)
class ParallelConfig:
    """How sharded kernels execute.

    Attributes:
        workers: Number of shards / pool workers. ``1`` disables
            sharding entirely (the serial kernels run untouched).
        backend: ``"serial"`` (shards run in-process, one after the
            other — deterministic scheduling for tests, and cache
            blocking on one core), ``"thread"`` (shared-memory thread
            pool; NumPy releases the GIL inside the hot kernels) or
            ``"process"`` (fork-based process pool; inputs are passed
            as shared-memory NumPy views, see
            :mod:`repro.parallel.pool`).
        min_size: Work-size threshold below which sharded entry points
            fall back to the serial path (the adaptive small-instance
            convention). Set to ``0`` to force sharding, e.g. in the
            equivalence harness.
    """

    workers: int = 1
    backend: str = "serial"
    min_size: int = DEFAULT_MIN_SIZE

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise GraphError(
                f"unknown parallel backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.workers < 1:
            raise GraphError(f"workers must be >= 1, got {self.workers}")

    def should_shard(self, work_size: int) -> bool:
        """Whether an instance of ``work_size`` units (nodes plus
        incidences, plane cells, ...) should take the sharded path."""
        return self.workers > 1 and work_size >= self.min_size

    def with_workers(self, workers: int) -> "ParallelConfig":
        return replace(self, workers=workers)

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "ParallelConfig":
        """Build the config named by ``REPRO_WORKERS`` / ``REPRO_BACKEND``.

        ``REPRO_WORKERS`` unset or empty yields the serial config; when
        set it must parse as an integer >= 1 (``1`` means serial). A
        worker count above 1 defaults the backend to ``thread`` unless
        ``REPRO_BACKEND`` says otherwise. Garbage never passes
        silently: a non-integer or non-positive ``REPRO_WORKERS`` and
        an unrecognized ``REPRO_BACKEND`` (even alongside a serial
        worker count) raise :class:`~repro.errors.GraphError` naming
        the offending variable, instead of surfacing as a deep
        ``ValueError`` — or a silently-serial run — later.
        """
        env = os.environ if environ is None else environ
        raw = (env.get("REPRO_WORKERS") or "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError as exc:
            raise GraphError(
                f"REPRO_WORKERS must be a positive integer, got {raw!r}"
            ) from exc
        if raw and workers < 1:
            raise GraphError(
                f"REPRO_WORKERS must be >= 1, got {raw!r} (unset it or "
                "use 1 for serial execution)"
            )
        raw_backend = (env.get("REPRO_BACKEND") or "").strip().lower()
        if raw_backend and raw_backend not in BACKENDS:
            raise GraphError(
                f"REPRO_BACKEND must be one of {BACKENDS}, got "
                f"{env.get('REPRO_BACKEND')!r}"
            )
        if workers <= 1:
            return cls()
        return cls(workers=workers, backend=raw_backend or "thread")


_default: ParallelConfig | None = None


def default_config() -> ParallelConfig:
    """The process-wide default (environment-derived, read lazily once)."""
    global _default
    if _default is None:
        _default = ParallelConfig.from_env()
    return _default


def set_default_config(config: ParallelConfig | None) -> ParallelConfig | None:
    """Replace the process-wide default; returns the previous value.

    ``None`` resets to "re-read the environment on next use".
    """
    global _default
    previous = _default
    _default = config
    return previous


@contextmanager
def use_config(config: ParallelConfig) -> Iterator[ParallelConfig]:
    """Temporarily install ``config`` as the process-wide default."""
    previous = set_default_config(config)
    try:
        yield config
    finally:
        set_default_config(previous)


def resolve_config(parallel: ParallelConfig | None) -> ParallelConfig:
    """Resolve an optional per-call config to an effective one."""
    return parallel if parallel is not None else default_config()
