"""Version-keyed LRU result cache for the flow server.

A served routing result is a pure function of ``(graph contents,
approximator, solver, ε, budget, demand)``. The graph exposes a
monotone cache-invalidation counter (``Graph._version``, bumped by both
``set_capacity`` write-throughs and structural mutation), so instead of
hashing graph contents the cache pins each stored entry to the *epoch*
it was computed in: the first lookup after a mutation notices the
version moved, drops every old-epoch entry **exactly once**, and counts
one invalidation — old-epoch results can never be served because they
are gone before any same-call lookup runs (see
``tests/test_serve.py``).

Within an epoch the cache is a plain LRU over query keys (solver kind,
ε, budget, and a content digest of the demand vector), so repeated
queries are O(1) hits and single lookups and batched columns share one
namespace — a demand routed inside a batch later hits as a single
query and vice versa, which is sound because batched routing is
bit-identical per column to the one-shot call.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

from repro.errors import GraphError

__all__ = ["CacheStats", "ResultCache", "demand_digest"]


def demand_digest(demand: np.ndarray) -> bytes:
    """Content digest of a demand vector (shape-tagged BLAKE2b-128).

    The digest covers the raw float64 bytes, so two demands hash equal
    iff they are bit-identical — the same identity the routing contract
    guarantees, hence a digest hit can serve the cached flow verbatim.
    """
    demand = np.ascontiguousarray(demand, dtype=float)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(demand.shape).encode())
    h.update(demand.tobytes())
    return h.digest()


@dataclass
class CacheStats:
    """Counters exposed by :class:`ResultCache` (monotone per server)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    size: int = 0


class ResultCache:
    """LRU mapping of query keys to routing results, pinned to a graph
    version epoch.

    Args:
        capacity: Maximum number of stored results; least-recently-used
            entries are evicted beyond it. ``0`` disables storage (every
            lookup misses) while keeping the epoch bookkeeping.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise GraphError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._epoch: int | None = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def sync_epoch(self, version: int) -> bool:
        """Pin the cache to ``version``; drop old-epoch entries.

        Returns True when a mutation was detected (the version moved
        past the pinned epoch). The drop happens on the *first* call
        after the mutation and only then — calling again with the same
        version is a no-op, which is the "invalidates exactly once"
        contract.
        """
        if self._epoch == version:
            return False
        moved = self._epoch is not None
        self._epoch = version
        if moved:
            self._entries.clear()
            self.invalidations += 1
        return moved

    def salvage_epoch(self, version: int) -> "OrderedDict[Hashable, Any]":
        """Like :meth:`sync_epoch`, but hand the dropped old-epoch
        entries back instead of discarding them.

        The incremental refresh policy (``FlowServer(refresh=
        "incremental")``) uses the salvage as warm-start seeds: an
        old-epoch flow for the *same* demand digest is rescaled to the
        new capacities and primes the solver, instead of the query
        paying a cold start. The entries are **removed** from the cache
        either way — a salvaged result is never served verbatim, and
        the invalidate-exactly-once accounting is identical to
        :meth:`sync_epoch` (one invalidation per epoch move).
        """
        if self._epoch == version:
            return OrderedDict()
        moved = self._epoch is not None
        self._epoch = version
        salvaged: "OrderedDict[Hashable, Any]" = OrderedDict()
        if moved:
            salvaged = self._entries
            self._entries = OrderedDict()
            self.invalidations += 1
        return salvaged

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value for ``key`` (refreshing its LRU
        position) or None. Counts a hit or a miss."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting LRU entries beyond
        capacity."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
            evictions=self.evictions,
            size=len(self._entries),
        )
