"""Warm workspace pool for the flow server.

AlmostRoute's inner loop is allocation free *given* a
:class:`~repro.core.almost_route.RouteWorkspace`; the workspace itself
is a dozen m/n/row-shaped buffers whose allocation (and first-touch
page faulting) is pure per-query overhead in a serve-many setting. The
pool keeps workspaces warm across queries: acquire pops a ready one
(or builds on first use), release pushes it back. Batch workspaces are
pooled per batch size Q, since every plane is Q-shaped.

Shape safety rides on the ``ensure`` contract: a released workspace is
only re-admitted if its ``shape_key`` still matches the pool's bound
(graph, approximator) pair, and ``rebind`` (called by the server after
a graph mutation or approximator rebuild) drops every pooled workspace
whose shapes went stale. Acquire/release are lock-protected so a server
can be driven from multiple request threads.
"""

from __future__ import annotations

# The serving pool guards acquire/release with a plain Lock so a
# FlowServer can be driven from multiple request threads; it never
# spawns workers or maps work — all computation still goes through
# repro.parallel's ordered-map pools.
import threading  # repolint: disable=pool-bypass -- Lock only, no pool primitives

from repro.core.almost_route import BatchRouteWorkspace, RouteWorkspace
from repro.core.approximator import TreeCongestionApproximator
from repro.faults import fault_point
from repro.graphs.graph import Graph

__all__ = ["WorkspacePool"]


class WorkspacePool:
    """Reusable single- and batch-routing workspaces for one
    (graph, approximator) pair."""

    #: Lock contract, machine-checked by repolint's lock-discipline
    #: rule: a FlowServer may be driven from multiple request threads,
    #: so every lexical write to these outside __init__ must sit
    #: inside ``with self._lock``.
    _GUARDED_BY = (
        "_singles",
        "_batches",
        "_graph",
        "_approximator",
        "_shape_key",
        "created_singles",
        "created_batches",
    )

    def __init__(
        self, graph: Graph, approximator: TreeCongestionApproximator
    ) -> None:
        self._lock = threading.Lock()
        self._singles: list[RouteWorkspace] = []
        self._batches: dict[int, list[BatchRouteWorkspace]] = {}
        self.created_singles = 0
        self.created_batches = 0
        self.rebind(graph, approximator)

    def rebind(
        self, graph: Graph, approximator: TreeCongestionApproximator
    ) -> None:
        """Point the pool at a (possibly new) pair, flushing every
        pooled workspace whose shapes no longer fit."""
        with self._lock:
            self._graph = graph
            self._approximator = approximator
            key = (graph.num_edges, graph.num_nodes, approximator.num_rows)
            self._shape_key = key
            self._singles = [
                ws for ws in self._singles if ws.shape_key == key
            ]
            self._batches = {
                q: kept
                for q, stock in self._batches.items()
                if (kept := [
                    ws for ws in stock if ws.shape_key == (q,) + key
                ])
            }

    def flush(self) -> None:
        """Drop every pooled workspace (keeps the binding)."""
        with self._lock:
            self._singles.clear()
            self._batches.clear()

    @fault_point("serve.checkout", kinds=("raise",))
    def acquire(self) -> RouteWorkspace:
        """Pop a warm single-query workspace, building one on a dry
        pool.

        Fault site ``serve.checkout``: a failed checkout is recoverable
        by design — the server falls back to a per-call workspace (the
        solver allocates internally) and counts the degradation."""
        with self._lock:
            if self._singles:
                return self._singles.pop()
            self.created_singles += 1
            graph, approximator = self._graph, self._approximator
        return RouteWorkspace(graph, approximator)

    def release(self, workspace: RouteWorkspace) -> None:
        """Return a workspace to the pool (silently dropped if its
        shapes went stale, e.g. released after a rebind)."""
        with self._lock:
            if workspace.shape_key == self._shape_key:
                self._singles.append(workspace)

    @fault_point("serve.checkout", kinds=("raise",))
    def acquire_batch(self, num_queries: int) -> BatchRouteWorkspace:
        """Pop a warm batch workspace for ``num_queries`` stacked
        demands, building one on a dry pool (same ``serve.checkout``
        fault site and fallback contract as :meth:`acquire`)."""
        with self._lock:
            stock = self._batches.get(num_queries)
            if stock:
                return stock.pop()
            self.created_batches += 1
            graph, approximator = self._graph, self._approximator
        return BatchRouteWorkspace(graph, approximator, num_queries)

    def release_batch(self, workspace: BatchRouteWorkspace) -> None:
        with self._lock:
            q = workspace.num_queries
            if workspace.shape_key == (q,) + self._shape_key:
                self._batches.setdefault(q, []).append(workspace)

    def pooled_counts(self) -> tuple[int, int]:
        """(idle single workspaces, idle batch workspaces) right now."""
        with self._lock:
            return (
                len(self._singles),
                sum(len(stock) for stock in self._batches.values()),
            )
