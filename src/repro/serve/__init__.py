"""Serving layer: build-once / serve-many routing (see ROADMAP).

:class:`FlowServer` owns a built congestion approximator, a warm
workspace pool, and a version-keyed result cache, and serves single and
batched multi-demand routing queries whose results are bit-identical to
the corresponding one-shot :func:`~repro.core.almost_route.almost_route`
calls.
"""

from repro.serve.cache import CacheStats, ResultCache, demand_digest
from repro.serve.pool import WorkspacePool
from repro.serve.server import FlowServer, ServerHealth, ServerStats

__all__ = [
    "CacheStats",
    "FlowServer",
    "ResultCache",
    "ServerHealth",
    "ServerStats",
    "WorkspacePool",
    "demand_digest",
]
