"""FlowServer — build-once / serve-many routing over one graph.

The paper's target workload (and the ROADMAP north star) is one graph
serving many demand queries: the congestion approximator costs ~n·log n
tree samples to build but answers any demand, so amortizing one build
over a query stream changes the economics completely. The server owns

* a built :class:`~repro.core.approximator.TreeCongestionApproximator`,
* a warm :class:`~repro.serve.pool.WorkspacePool` of single- and
  batch-routing workspaces, and
* a version-keyed :class:`~repro.serve.cache.ResultCache`,

and serves single demands (:meth:`FlowServer.route`,
:meth:`FlowServer.route_st`) and stacked multi-demand batches
(:meth:`FlowServer.route_batch`, the
:func:`~repro.core.almost_route.almost_route_batch` fast path that
amortizes every operator product across the batch).

Because batched routing is **bit-identical per column** to the one-shot
call, singles and batch columns share one cache namespace: a demand
routed inside a batch hits later as a single query and vice versa, and
a batch with partial hits routes only the missing columns (as a
smaller batch) without changing any result bit.

Mutation safety: every entry point first compares the graph's
cache-invalidation counter (``Graph._version``) against the epoch the
cache and approximator were built in. A moved version drops the cached
results exactly once and — under the default ``refresh="rebuild"``
policy — rebuilds the approximator from the stored seed and rebinds
the workspace pool. ``refresh="reuse"`` keeps the (now stale) tree
approximator as a documented approximation: routing still uses the
live capacities through ``graph.capacities()``, but the cut structure
R reflects the pre-mutation graph, so quality degrades gracefully
instead of paying a rebuild. Structural mutations (``add_edge``)
always flush the pool, since every workspace is m-shaped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.core.accelerated import (
    accelerated_almost_route,
    accelerated_almost_route_batch,
)
from repro.core.almost_route import (
    AlmostRouteResult,
    BatchAlmostRouteResult,
    BatchRouteWorkspace,
    RouteWorkspace,
    almost_route,
    almost_route_batch,
)
from repro.core.approximator import (
    TreeCongestionApproximator,
    build_congestion_approximator,
)
from repro.errors import (
    DeadlineExceededError,
    GraphError,
    PoolFailureError,
    ServingError,
)
from repro.faults import fault_point
from repro.graphs.graph import Graph
from repro.graphs.journal import rescale_flow
from repro.parallel.config import ParallelConfig, resolve_config
from repro.parallel.pool import PoolStats, get_pool
from repro.serve.cache import CacheStats, ResultCache, demand_digest
from repro.serve.pool import WorkspacePool
from repro.util.validation import st_demand

__all__ = ["FlowServer", "ServerHealth", "ServerStats"]

_SOLVERS = {
    "plain": (almost_route, almost_route_batch),
    "accelerated": (accelerated_almost_route, accelerated_almost_route_batch),
}


@dataclass
class ServerStats:
    """Serving counters plus a snapshot of the cache stats.

    ``incremental_refreshes`` counts epoch moves absorbed by the
    journal-driven scoped refresh (``refresh="incremental"``) instead
    of a full rebuild; ``warm_starts`` counts queries seeded from a
    salvaged previous-epoch flow instead of starting cold.
    """

    single_queries: int = 0
    batch_queries: int = 0
    batched_columns: int = 0
    rebuilds: int = 0
    incremental_refreshes: int = 0
    warm_starts: int = 0
    cache: CacheStats | None = None


@dataclass(frozen=True)
class ServerHealth:
    """Degradation and failure snapshot for one :class:`FlowServer`.

    Recovery is invisible in results by contract, so this snapshot is
    how operators see that the server has been absorbing failures.

    Attributes:
        workspace_fallbacks: Solves that ran on a per-call workspace
            because the warm-pool checkout failed.
        column_failures: Demand columns that ended as a
            :class:`~repro.errors.ServingError` (the error-isolation
            contract: one poisoned column never fails its batch).
        batch_splits: Miss-chunk bisections performed to isolate
            poisoned columns.
        deadline_hits: Requests that exceeded their deadline.
        pool_failures: :class:`~repro.errors.PoolFailureError` events
            absorbed by the circuit-breaker machinery.
        breaker_trips: Backend degradations taken
            (process → thread → serial).
        consecutive_pool_failures: Current trip progress toward the
            next degradation.
        configured_backend: The backend the server was configured with.
        effective_backend: The backend requests currently run on.
        degraded: Whether the breaker has moved the server off its
            configured backend (see :meth:`FlowServer.reset_breaker`).
        last_error: ``repr``-style description of the most recent
            absorbed failure (``None`` when the server never failed).
        shard_pool: Stats of the shard pool serving the effective
            backend (``None`` for serial / single-worker execution).
        incremental_refreshes: Epoch moves absorbed by the
            journal-driven scoped refresh instead of a full rebuild
            (``refresh="incremental"`` only).
        warm_starts: Queries seeded from a salvaged previous-epoch
            flow instead of starting cold.
    """

    workspace_fallbacks: int
    column_failures: int
    batch_splits: int
    deadline_hits: int
    pool_failures: int
    breaker_trips: int
    consecutive_pool_failures: int
    configured_backend: str
    effective_backend: str
    degraded: bool
    last_error: str | None
    shard_pool: PoolStats | None
    incremental_refreshes: int = 0
    warm_starts: int = 0


class FlowServer:
    """Serve routing queries against one graph, building R once.

    Args:
        graph: The capacitated graph to serve.
        approximator: Optional prebuilt congestion approximator; built
            from ``rng`` when omitted.
        epsilon: Target AlmostRoute accuracy shared by all queries
            (part of every cache key).
        solver: ``"plain"`` (Algorithm 2) or ``"accelerated"``
            (momentum variant, footnote 3).
        max_iterations: Optional per-query gradient budget override.
        cache_capacity: LRU capacity of the result cache (``0``
            disables caching).
        max_batch: Upper bound on the number of demand columns routed
            through one stacked solver call; larger miss batches are
            served in chunks of this size. Batched routing is
            bit-identical per column regardless of how columns are
            grouped, so chunking is purely a working-set policy: the
            ``(Q, ·)`` planes of a bounded chunk stay cache-resident
            where one huge batch would stream through DRAM (measured in
            ``tools/bench_serving.py``). ``None`` disables chunking.
        parallel: Optional sharded-execution config for the operator
            products (results are bit-identical either way).
        rng: Seed used to build — and, under ``refresh="rebuild"`` /
            ``refresh="incremental"``, re-build or re-sample — the
            approximator.
        refresh: Mutation policy: ``"rebuild"`` (default) reconstructs
            the approximator from ``rng`` when the graph version moves;
            ``"reuse"`` keeps the stale tree structure (documented
            approximation — live capacities, pre-mutation cuts);
            ``"incremental"`` consumes the graph's epoch delta journal:
            for capacity-only deltas the approximator's cut rows are
            refreshed in place (journal-intersecting trees resampled),
            salvaged same-digest cache entries become warm-start seeds
            for their next query, and the full rebuild is reserved for
            structural mutations or journal overflow. Warm-started
            results satisfy the same ``(1+ε)·α`` guarantee and
            cross-backend bit-identity as cold ones.
        deadline: Per-request wall-clock budget in seconds (``None``
            disables it). Checked cooperatively at chunk boundaries —
            an in-flight solve completes before the deadline is
            observed — and raises
            :class:`~repro.errors.DeadlineExceededError`.
        breaker_threshold: Consecutive pool losses tolerated before
            the circuit-breaker degrades the execution backend one
            step (process → thread → serial); results stay
            bit-identical by the determinism contract, so degradation
            trades throughput for availability, never correctness.
    """

    def __init__(
        self,
        graph: Graph,
        approximator: TreeCongestionApproximator | None = None,
        *,
        epsilon: float = 0.1,
        solver: Literal["plain", "accelerated"] = "plain",
        max_iterations: int | None = None,
        cache_capacity: int = 1024,
        max_batch: int | None = 8,
        parallel: ParallelConfig | None = None,
        rng: np.random.Generator | int | None = 0,
        refresh: Literal["rebuild", "reuse", "incremental"] = "rebuild",
        deadline: float | None = None,
        breaker_threshold: int = 3,
    ) -> None:
        if solver not in _SOLVERS:
            raise GraphError(
                f"solver must be one of {sorted(_SOLVERS)}, got {solver!r}"
            )
        if refresh not in ("rebuild", "reuse", "incremental"):
            raise GraphError(
                "refresh must be 'rebuild', 'reuse' or 'incremental', "
                f"got {refresh!r}"
            )
        eps = float(epsilon)
        if not 0 < eps <= 1:
            raise GraphError(f"epsilon must be in (0, 1], got {epsilon}")
        if max_batch is not None and max_batch < 1:
            raise GraphError(f"max_batch must be >= 1 or None, got {max_batch}")
        if deadline is not None and not deadline > 0:
            raise GraphError(
                f"deadline must be > 0 seconds or None, got {deadline}"
            )
        if breaker_threshold < 1:
            raise GraphError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        self.graph = graph
        self.epsilon = eps
        self.solver = solver
        self.max_iterations = max_iterations
        self.max_batch = max_batch
        self.parallel = parallel
        self.refresh = refresh
        self.deadline = deadline
        self.breaker_threshold = breaker_threshold
        self._rng = rng
        if approximator is None:
            approximator = build_congestion_approximator(
                graph, rng=rng, parallel=parallel
            )
        elif approximator.graph is not graph:
            raise GraphError(
                "approximator was built for a different graph object"
            )
        self.approximator = approximator
        self._cache = ResultCache(cache_capacity)
        self._cache.sync_epoch(graph._version)
        self._pool = WorkspacePool(graph, approximator)
        self._epoch = graph._version
        self._edge_count = graph.num_edges
        self._single_queries = 0
        self._batch_queries = 0
        self._batched_columns = 0
        self._rebuilds = 0
        self._incremental_refreshes = 0
        self._warm_starts = 0
        # Warm-start seeds salvaged by the incremental refresh: query
        # key -> previous-epoch flow rescaled to the live capacities.
        # Replaced wholesale at each epoch move (so a seed is always
        # exactly one journal delta away from the epoch it serves in)
        # and consumed on use.
        self._warm_seeds: dict[tuple, np.ndarray] = {}
        # Health / degradation state (see ServerHealth).
        self._effective_parallel = parallel
        self._workspace_fallbacks = 0
        self._column_failures = 0
        self._batch_splits = 0
        self._deadline_hits = 0
        self._pool_failures = 0
        self._breaker_trips = 0
        self._consecutive_pool_failures = 0
        self._last_error: str | None = None

    # ------------------------------------------------------------------
    # Mutation detection
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Catch up with graph mutations before serving a query.

        Drops (or, under ``refresh="incremental"``, salvages) old-epoch
        cached results exactly once and applies the refresh policy to
        the approximator and workspace pool.
        """
        version = self.graph._version
        if version == self._epoch:
            return
        structural = self.graph.num_edges != self._edge_count
        delta = None
        if self.refresh == "incremental" and not structural:
            # None when the journal cannot vouch for the interval
            # (overflow, or a structural mutation re-based it): fall
            # through to the full rebuild below.
            delta = self.graph.deltas_since(self._epoch)
        if delta is not None:
            # Capacity-only delta with a sound journal: patch the
            # operator in place, keep the pooled workspaces (their
            # shape key is epoch-independent), and convert old-epoch
            # cache entries into warm-start seeds instead of waste.
            salvaged = self._cache.salvage_epoch(version)
            if delta.num_edges:
                self.approximator.refresh_capacities(
                    delta.edge_ids, rng=self._rng
                )
            self._incremental_refreshes += 1
            self._warm_seeds = {
                key: rescale_flow(result.flow, delta)
                for key, result in salvaged.items()
                if isinstance(result, AlmostRouteResult)
            }
        else:
            self._cache.sync_epoch(version)
            self._warm_seeds = {}
            if self.refresh in ("rebuild", "incremental"):
                self.approximator = build_congestion_approximator(
                    self.graph, rng=self._rng, parallel=self.parallel
                )
                self._rebuilds += 1
                self._pool.rebind(self.graph, self.approximator)
            elif structural:
                # Stale approximator kept by policy, but the m-shaped
                # workspaces cannot survive an edge-count change.
                self._pool.rebind(self.graph, self.approximator)
        self._epoch = version
        self._edge_count = self.graph.num_edges

    # ------------------------------------------------------------------
    # Query keys
    # ------------------------------------------------------------------
    def _query_key(self, demand: np.ndarray) -> tuple:
        return (
            self.solver,
            self.epsilon,
            self.max_iterations,
            demand_digest(demand),
        )

    # ------------------------------------------------------------------
    # Supervision (deadline, workspace fallback, circuit-breaker)
    # ------------------------------------------------------------------
    def _current_parallel(self) -> ParallelConfig | None:
        """The execution config requests run on right now (the
        configured one until the circuit-breaker degrades it)."""
        return self._effective_parallel

    def _deadline_at(self) -> float | None:
        return (
            None if self.deadline is None else time.monotonic() + self.deadline
        )

    def _check_deadline(self, deadline_at: float | None) -> None:
        """Cooperative deadline check, called at chunk boundaries."""
        if deadline_at is not None and time.monotonic() > deadline_at:
            self._deadline_hits += 1
            raise DeadlineExceededError(
                f"request exceeded its {self.deadline}s deadline"
            )

    def _acquire_single(self) -> RouteWorkspace | None:
        """Warm-pool checkout with fallback: a failed checkout means
        the solver allocates a per-call workspace (slower, identical
        results) — a counted degradation, never a failed request."""
        try:
            return self._pool.acquire()
        except Exception as exc:
            self._workspace_fallbacks += 1
            self._last_error = f"{type(exc).__name__}: {exc}"
            return None

    def _acquire_batch(self, num_queries: int) -> BatchRouteWorkspace | None:
        """Batch-workspace checkout with the same fallback contract as
        :meth:`_acquire_single`."""
        try:
            return self._pool.acquire_batch(num_queries)
        except Exception as exc:
            self._workspace_fallbacks += 1
            self._last_error = f"{type(exc).__name__}: {exc}"
            return None

    def _note_pool_failure(self, exc: PoolFailureError) -> bool:
        """Record a pool loss; returns whether the caller should retry.

        Below ``breaker_threshold`` consecutive losses the retry stays
        on the current backend (the pool already retried internally —
        this is a second chance after a respawn).  At the threshold the
        breaker trips: the effective backend degrades one step
        (process → thread → serial) and the counter resets.  ``False``
        means every degradation is exhausted and the caller must
        surface a :class:`~repro.errors.ServingError`."""
        self._pool_failures += 1
        self._consecutive_pool_failures += 1
        self._last_error = f"{type(exc).__name__}: {exc}"
        if self._consecutive_pool_failures < self.breaker_threshold:
            return True
        resolved = resolve_config(self._current_parallel())
        if resolved.workers <= 1 or resolved.backend == "serial":
            return False
        if resolved.backend == "process":
            self._effective_parallel = replace(resolved, backend="thread")
        else:
            self._effective_parallel = replace(resolved, backend="serial")
        self._breaker_trips += 1
        self._consecutive_pool_failures = 0
        return True

    def reset_breaker(self) -> None:
        """Restore the configured execution backend after a degradation
        (operators call this once the underlying fault is resolved)."""
        self._effective_parallel = self.parallel
        self._consecutive_pool_failures = 0

    @fault_point("serve.miss", kinds=("raise", "hang"))
    def _solve_chunk(
        self,
        plane: np.ndarray,
        workspace: BatchRouteWorkspace | None,
        initial_flows: np.ndarray | None = None,
    ) -> BatchAlmostRouteResult:
        """Solve one miss chunk (fault site ``serve.miss``)."""
        _, batch_solver = _SOLVERS[self.solver]
        return batch_solver(
            self.graph,
            self.approximator,
            plane,
            self.epsilon,
            max_iterations=self.max_iterations,
            workspace=workspace,
            parallel=self._current_parallel(),
            initial_flows=initial_flows,
        )

    def _seed_plane(
        self, idx: list[int], keys: list[tuple]
    ) -> tuple[np.ndarray | None, list[int]]:
        """The warm-start plane for a miss chunk, or ``None`` when no
        column has a salvaged seed.

        Unseeded columns get an all-zero row — dividing a zero seed by
        ``kb`` reproduces the cold init bit for bit, so mixing seeded
        and cold columns in one chunk never perturbs the cold ones.
        """
        rows = [self._warm_seeds.get(keys[q]) for q in idx]
        seeded = [j for j, row in enumerate(rows) if row is not None]
        if not seeded:
            return None, []
        plane = np.zeros((len(idx), self.graph.num_edges))
        for j in seeded:
            plane[j] = rows[j]
        return plane, seeded

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def route(
        self, demand: Sequence[float], use_cache: bool = True
    ) -> AlmostRouteResult:
        """Route one demand vector, hitting the result cache when the
        same query was served this epoch (by single or batched call).

        Cached results are shared objects — treat them as read-only.
        Pool loss is absorbed by the circuit-breaker (retry, then
        backend degradation); a workspace used by a failed solve is
        dropped, never re-pooled.
        """
        self._sync()
        self._single_queries += 1
        demand = np.ascontiguousarray(demand, dtype=float)
        key = self._query_key(demand)
        if use_cache:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        # Warm start: a salvaged previous-epoch flow for this exact
        # demand digest (rescaled to the new capacities at sync time)
        # primes the solver. Gated on use_cache because the seed is
        # cache-derived state; popped so it is used at most once.
        seed = self._warm_seeds.pop(key, None) if use_cache else None
        if seed is not None:
            self._warm_starts += 1
        single, _ = _SOLVERS[self.solver]
        deadline_at = self._deadline_at()
        while True:
            self._check_deadline(deadline_at)
            workspace = self._acquire_single()
            try:
                result = single(
                    self.graph,
                    self.approximator,
                    demand,
                    self.epsilon,
                    max_iterations=self.max_iterations,
                    workspace=workspace,
                    parallel=self._current_parallel(),
                    initial_flow=seed,
                )
            except PoolFailureError as exc:
                # The workspace may have been written by a failed (or
                # still-running, on the thread backend) shard: poison
                # it by dropping the reference instead of re-pooling.
                workspace = None
                if self._note_pool_failure(exc):
                    continue
                raise ServingError(
                    "single routing failed: worker-pool loss persisted "
                    "through every circuit-breaker degradation"
                ) from exc
            finally:
                if workspace is not None:
                    self._pool.release(workspace)
            self._consecutive_pool_failures = 0
            self._cache.put(key, result)
            return result

    def route_st(
        self, source: int, sink: int, value: float = 1.0, use_cache: bool = True
    ) -> AlmostRouteResult:
        """Route an s-t demand of the given value."""
        return self.route(
            st_demand(self.graph, source, sink, value), use_cache=use_cache
        )

    def route_batch(
        self,
        demands: Iterable[Sequence[float]] | np.ndarray,
        use_cache: bool = True,
        errors: Literal["raise", "return"] = "raise",
    ) -> list[AlmostRouteResult]:
        """Route ``Q`` stacked demands through the batched solver.

        Cache hits are split out first; the remaining misses run as
        smaller stacked batches of at most ``max_batch`` columns
        (bit-identity makes the re-batching invisible in the results)
        and every fresh column is cached individually, so batches and
        singles warm each other.

        Error isolation: a poisoned demand column fails its *own*
        request — the miss chunk is bisected until the failure is
        pinned to single columns, which receive a
        :class:`~repro.errors.ServingError` carrying the cause chain,
        while every healthy column routes normally (bit-identical to a
        clean run). With ``errors="raise"`` (default) the first such
        failure is raised after the whole batch is served; with
        ``errors="return"`` the ``ServingError`` objects are returned
        in the failed columns' positions instead.
        """
        if errors not in ("raise", "return"):
            raise GraphError(
                f"errors must be 'raise' or 'return', got {errors!r}"
            )
        self._sync()
        demands = np.ascontiguousarray(demands, dtype=float)
        if demands.ndim != 2:
            raise GraphError(
                f"expected a (Q, n) demand plane, got shape {demands.shape}"
            )
        num_queries = demands.shape[0]
        self._batch_queries += 1
        self._batched_columns += num_queries
        results: list[AlmostRouteResult | ServingError | None] = (
            [None] * num_queries
        )
        keys = [self._query_key(demands[q]) for q in range(num_queries)]
        miss_idx = []
        for q, key in enumerate(keys):
            cached = self._cache.get(key) if use_cache else None
            if cached is not None:
                results[q] = cached
            else:
                miss_idx.append(q)
        deadline_at = self._deadline_at()
        chunk = self.max_batch or len(miss_idx) or 1
        # Chunked miss routing: column grouping never changes any bit,
        # so bounding the per-call plane width is free correctness-wise
        # and keeps the solver's working set cache-resident. Fixed-size
        # chunks also re-hit the same pooled batch workspace.
        for start in range(0, len(miss_idx), chunk):
            idx = miss_idx[start : start + chunk]
            self._route_chunk(
                demands, idx, keys, results, deadline_at, use_seeds=use_cache
            )
        if errors == "raise":
            for item in results:
                if isinstance(item, ServingError):
                    raise item
        return results  # type: ignore[return-value]

    def _route_chunk(
        self,
        demands: np.ndarray,
        idx: list[int],
        keys: list[tuple],
        results: list[AlmostRouteResult | ServingError | None],
        deadline_at: float | None,
        use_seeds: bool = True,
    ) -> None:
        """Serve one miss chunk, bisecting on failure.

        Pool loss retries the whole chunk (same backend, then breaker
        degradation); any other solve failure bisects the chunk until
        it is pinned to single columns, which store a
        :class:`~repro.errors.ServingError` in their result slot —
        healthy siblings re-route bit-identically."""
        while True:
            self._check_deadline(deadline_at)
            plane = np.ascontiguousarray(demands[idx])
            seeds, seeded = (
                self._seed_plane(idx, keys) if use_seeds else (None, [])
            )
            workspace = self._acquire_batch(len(idx))
            try:
                batch = self._solve_chunk(plane, workspace, initial_flows=seeds)
            except PoolFailureError as exc:
                workspace = None  # poisoned: drop, never re-pool
                if self._note_pool_failure(exc):
                    continue
                failure = ServingError(
                    "batched routing failed: worker-pool loss persisted "
                    "through every circuit-breaker degradation"
                )
                failure.__cause__ = exc
                self._column_failures += len(idx)
                for q in idx:
                    results[q] = failure
                return
            except Exception as exc:
                workspace = None  # poisoned: drop, never re-pool
                if len(idx) == 1:
                    failure = ServingError(
                        f"demand column {idx[0]} failed to route: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    failure.__cause__ = exc
                    self._column_failures += 1
                    self._last_error = f"{type(exc).__name__}: {exc}"
                    results[idx[0]] = failure
                    return
                # Bisect: the failure names the chunk, not the column.
                # Both halves re-route (bit-identity makes the regroup
                # invisible) until the poison is isolated.
                self._batch_splits += 1
                mid = len(idx) // 2
                self._route_chunk(
                    demands, idx[:mid], keys, results, deadline_at,
                    use_seeds=use_seeds,
                )
                self._route_chunk(
                    demands, idx[mid:], keys, results, deadline_at,
                    use_seeds=use_seeds,
                )
                return
            finally:
                if workspace is not None:
                    self._pool.release_batch(workspace)
            self._consecutive_pool_failures = 0
            for j in seeded:
                self._warm_seeds.pop(keys[idx[j]], None)
                self._warm_starts += 1
            for j, q in enumerate(idx):
                result = batch.query(j)
                self._cache.put(keys[q], result)
                results[q] = result
            return

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        return ServerStats(
            single_queries=self._single_queries,
            batch_queries=self._batch_queries,
            batched_columns=self._batched_columns,
            rebuilds=self._rebuilds,
            incremental_refreshes=self._incremental_refreshes,
            warm_starts=self._warm_starts,
            cache=self._cache.stats(),
        )

    def health(self) -> ServerHealth:
        """Degradation snapshot (see :class:`ServerHealth`): what the
        server has absorbed, what it surfaced, and which backend it is
        currently running on."""
        configured = resolve_config(self.parallel)
        effective = resolve_config(self._current_parallel())
        shard_pool: PoolStats | None = None
        if effective.workers > 1 and effective.backend != "serial":
            shard_pool = get_pool(effective).stats.snapshot()
        return ServerHealth(
            workspace_fallbacks=self._workspace_fallbacks,
            column_failures=self._column_failures,
            batch_splits=self._batch_splits,
            deadline_hits=self._deadline_hits,
            pool_failures=self._pool_failures,
            breaker_trips=self._breaker_trips,
            consecutive_pool_failures=self._consecutive_pool_failures,
            configured_backend=configured.backend,
            effective_backend=effective.backend,
            degraded=effective.backend != configured.backend,
            last_error=self._last_error,
            shard_pool=shard_pool,
            incremental_refreshes=self._incremental_refreshes,
            warm_starts=self._warm_starts,
        )

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def pool(self) -> WorkspacePool:
        return self._pool
