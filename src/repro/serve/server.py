"""FlowServer — build-once / serve-many routing over one graph.

The paper's target workload (and the ROADMAP north star) is one graph
serving many demand queries: the congestion approximator costs ~n·log n
tree samples to build but answers any demand, so amortizing one build
over a query stream changes the economics completely. The server owns

* a built :class:`~repro.core.approximator.TreeCongestionApproximator`,
* a warm :class:`~repro.serve.pool.WorkspacePool` of single- and
  batch-routing workspaces, and
* a version-keyed :class:`~repro.serve.cache.ResultCache`,

and serves single demands (:meth:`FlowServer.route`,
:meth:`FlowServer.route_st`) and stacked multi-demand batches
(:meth:`FlowServer.route_batch`, the
:func:`~repro.core.almost_route.almost_route_batch` fast path that
amortizes every operator product across the batch).

Because batched routing is **bit-identical per column** to the one-shot
call, singles and batch columns share one cache namespace: a demand
routed inside a batch hits later as a single query and vice versa, and
a batch with partial hits routes only the missing columns (as a
smaller batch) without changing any result bit.

Mutation safety: every entry point first compares the graph's
cache-invalidation counter (``Graph._version``) against the epoch the
cache and approximator were built in. A moved version drops the cached
results exactly once and — under the default ``refresh="rebuild"``
policy — rebuilds the approximator from the stored seed and rebinds
the workspace pool. ``refresh="reuse"`` keeps the (now stale) tree
approximator as a documented approximation: routing still uses the
live capacities through ``graph.capacities()``, but the cut structure
R reflects the pre-mutation graph, so quality degrades gracefully
instead of paying a rebuild. Structural mutations (``add_edge``)
always flush the pool, since every workspace is m-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.core.accelerated import (
    accelerated_almost_route,
    accelerated_almost_route_batch,
)
from repro.core.almost_route import AlmostRouteResult, almost_route, almost_route_batch
from repro.core.approximator import (
    TreeCongestionApproximator,
    build_congestion_approximator,
)
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.parallel.config import ParallelConfig
from repro.serve.cache import CacheStats, ResultCache, demand_digest
from repro.serve.pool import WorkspacePool
from repro.util.validation import st_demand

__all__ = ["FlowServer", "ServerStats"]

_SOLVERS = {
    "plain": (almost_route, almost_route_batch),
    "accelerated": (accelerated_almost_route, accelerated_almost_route_batch),
}


@dataclass
class ServerStats:
    """Serving counters plus a snapshot of the cache stats."""

    single_queries: int = 0
    batch_queries: int = 0
    batched_columns: int = 0
    rebuilds: int = 0
    cache: CacheStats | None = None


class FlowServer:
    """Serve routing queries against one graph, building R once.

    Args:
        graph: The capacitated graph to serve.
        approximator: Optional prebuilt congestion approximator; built
            from ``rng`` when omitted.
        epsilon: Target AlmostRoute accuracy shared by all queries
            (part of every cache key).
        solver: ``"plain"`` (Algorithm 2) or ``"accelerated"``
            (momentum variant, footnote 3).
        max_iterations: Optional per-query gradient budget override.
        cache_capacity: LRU capacity of the result cache (``0``
            disables caching).
        max_batch: Upper bound on the number of demand columns routed
            through one stacked solver call; larger miss batches are
            served in chunks of this size. Batched routing is
            bit-identical per column regardless of how columns are
            grouped, so chunking is purely a working-set policy: the
            ``(Q, ·)`` planes of a bounded chunk stay cache-resident
            where one huge batch would stream through DRAM (measured in
            ``tools/bench_serving.py``). ``None`` disables chunking.
        parallel: Optional sharded-execution config for the operator
            products (results are bit-identical either way).
        rng: Seed used to build — and, under ``refresh="rebuild"``,
            re-build — the approximator.
        refresh: Mutation policy: ``"rebuild"`` (default) reconstructs
            the approximator from ``rng`` when the graph version moves;
            ``"reuse"`` keeps the stale tree structure (documented
            approximation — live capacities, pre-mutation cuts).
    """

    def __init__(
        self,
        graph: Graph,
        approximator: TreeCongestionApproximator | None = None,
        *,
        epsilon: float = 0.1,
        solver: Literal["plain", "accelerated"] = "plain",
        max_iterations: int | None = None,
        cache_capacity: int = 1024,
        max_batch: int | None = 8,
        parallel: ParallelConfig | None = None,
        rng: np.random.Generator | int | None = 0,
        refresh: Literal["rebuild", "reuse"] = "rebuild",
    ) -> None:
        if solver not in _SOLVERS:
            raise GraphError(
                f"solver must be one of {sorted(_SOLVERS)}, got {solver!r}"
            )
        if refresh not in ("rebuild", "reuse"):
            raise GraphError(
                f"refresh must be 'rebuild' or 'reuse', got {refresh!r}"
            )
        eps = float(epsilon)
        if not 0 < eps <= 1:
            raise GraphError(f"epsilon must be in (0, 1], got {epsilon}")
        if max_batch is not None and max_batch < 1:
            raise GraphError(f"max_batch must be >= 1 or None, got {max_batch}")
        self.graph = graph
        self.epsilon = eps
        self.solver = solver
        self.max_iterations = max_iterations
        self.max_batch = max_batch
        self.parallel = parallel
        self.refresh = refresh
        self._rng = rng
        if approximator is None:
            approximator = build_congestion_approximator(
                graph, rng=rng, parallel=parallel
            )
        elif approximator.graph is not graph:
            raise GraphError(
                "approximator was built for a different graph object"
            )
        self.approximator = approximator
        self._cache = ResultCache(cache_capacity)
        self._cache.sync_epoch(graph._version)
        self._pool = WorkspacePool(graph, approximator)
        self._epoch = graph._version
        self._edge_count = graph.num_edges
        self._single_queries = 0
        self._batch_queries = 0
        self._batched_columns = 0
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Mutation detection
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Catch up with graph mutations before serving a query.

        Drops old-epoch cached results exactly once (the cache's own
        contract) and applies the refresh policy to the approximator
        and workspace pool.
        """
        version = self.graph._version
        if version == self._epoch:
            return
        self._cache.sync_epoch(version)
        structural = self.graph.num_edges != self._edge_count
        if self.refresh == "rebuild":
            self.approximator = build_congestion_approximator(
                self.graph, rng=self._rng, parallel=self.parallel
            )
            self._rebuilds += 1
            self._pool.rebind(self.graph, self.approximator)
        elif structural:
            # Stale approximator kept by policy, but the m-shaped
            # workspaces cannot survive an edge-count change.
            self._pool.rebind(self.graph, self.approximator)
        self._epoch = version
        self._edge_count = self.graph.num_edges

    # ------------------------------------------------------------------
    # Query keys
    # ------------------------------------------------------------------
    def _query_key(self, demand: np.ndarray) -> tuple:
        return (
            self.solver,
            self.epsilon,
            self.max_iterations,
            demand_digest(demand),
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def route(
        self, demand: Sequence[float], use_cache: bool = True
    ) -> AlmostRouteResult:
        """Route one demand vector, hitting the result cache when the
        same query was served this epoch (by single or batched call).

        Cached results are shared objects — treat them as read-only.
        """
        self._sync()
        self._single_queries += 1
        demand = np.ascontiguousarray(demand, dtype=float)
        key = self._query_key(demand)
        if use_cache:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        single, _ = _SOLVERS[self.solver]
        workspace = self._pool.acquire()
        try:
            result = single(
                self.graph,
                self.approximator,
                demand,
                self.epsilon,
                max_iterations=self.max_iterations,
                workspace=workspace,
                parallel=self.parallel,
            )
        finally:
            self._pool.release(workspace)
        self._cache.put(key, result)
        return result

    def route_st(
        self, source: int, sink: int, value: float = 1.0, use_cache: bool = True
    ) -> AlmostRouteResult:
        """Route an s-t demand of the given value."""
        return self.route(
            st_demand(self.graph, source, sink, value), use_cache=use_cache
        )

    def route_batch(
        self,
        demands: Iterable[Sequence[float]] | np.ndarray,
        use_cache: bool = True,
    ) -> list[AlmostRouteResult]:
        """Route ``Q`` stacked demands through the batched solver.

        Cache hits are split out first; the remaining misses run as
        smaller stacked batches of at most ``max_batch`` columns
        (bit-identity makes the re-batching invisible in the results)
        and every fresh column is cached individually, so batches and
        singles warm each other.
        """
        self._sync()
        demands = np.ascontiguousarray(demands, dtype=float)
        if demands.ndim != 2:
            raise GraphError(
                f"expected a (Q, n) demand plane, got shape {demands.shape}"
            )
        num_queries = demands.shape[0]
        self._batch_queries += 1
        self._batched_columns += num_queries
        results: list[AlmostRouteResult | None] = [None] * num_queries
        keys = [self._query_key(demands[q]) for q in range(num_queries)]
        miss_idx = []
        for q, key in enumerate(keys):
            cached = self._cache.get(key) if use_cache else None
            if cached is not None:
                results[q] = cached
            else:
                miss_idx.append(q)
        _, batch_solver = _SOLVERS[self.solver]
        chunk = self.max_batch or len(miss_idx) or 1
        # Chunked miss routing: column grouping never changes any bit,
        # so bounding the per-call plane width is free correctness-wise
        # and keeps the solver's working set cache-resident. Fixed-size
        # chunks also re-hit the same pooled batch workspace.
        for start in range(0, len(miss_idx), chunk):
            idx = miss_idx[start : start + chunk]
            plane = np.ascontiguousarray(demands[idx])
            workspace = self._pool.acquire_batch(len(idx))
            try:
                batch = batch_solver(
                    self.graph,
                    self.approximator,
                    plane,
                    self.epsilon,
                    max_iterations=self.max_iterations,
                    workspace=workspace,
                    parallel=self.parallel,
                )
            finally:
                self._pool.release_batch(workspace)
            for j, q in enumerate(idx):
                result = batch.query(j)
                self._cache.put(keys[q], result)
                results[q] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        return ServerStats(
            single_queries=self._single_queries,
            batch_queries=self._batch_queries,
            batched_columns=self._batched_columns,
            rebuilds=self._rebuilds,
            cache=self._cache.stats(),
        )

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def pool(self) -> WorkspacePool:
        return self._pool
