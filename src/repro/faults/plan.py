"""Deterministic fault injection for the execution layers.

The serving stack built in PRs 4–6 (sharded pools, shared-memory
arena, FlowServer) assumed a fault-free world.  This module supplies
the other half of the robustness story: a *deterministic* way to make
those layers fail on demand so the supervised-recovery paths in
:mod:`repro.parallel.pool`, :mod:`repro.parallel.arena` and
:mod:`repro.serve.server` can be pinned by tests instead of waiting
for production to exercise them.

Design
------

* **Sites, not hooks.**  Each place a fault can be injected is a named
  *site* from the closed catalogue :data:`SITES` (``pool.dispatch``,
  ``pool.worker``, ``arena.export``, ``arena.attach``,
  ``serve.checkout``, ``serve.miss``).  A site either carries a
  :func:`fault_point`-decorated function (the decorator registers the
  owner in :data:`FAULT_POINTS` and wraps it with a one-global-read
  guard) or is consulted explicitly via :func:`fire` /
  :func:`maybe_fire` where the injection decision must be made by a
  coordinator (the process pool decides *parent-side* and ships a
  picklable directive to the worker, so fork-inherited counters can
  never double-count a visit).

* **Deterministic schedules.**  A :class:`FaultPlan` is built from
  explicit :class:`FaultSpec` entries (``site[:kind][@at][*count]`` —
  fire ``count`` times starting at the ``at``-th visit) and/or a
  seeded per-site Bernoulli schedule (``seed=``/``rate=``).  Visit
  counters are lock-guarded and per-site, so a given plan fires at
  exactly the same visits on every run.

* **Zero overhead when disarmed.**  With no plan installed and
  ``REPRO_FAULTS`` unset, the guard added by :func:`fault_point` is a
  single module-global read; nothing else in the hot path changes.

Activation mirrors :mod:`repro.parallel.config`: the process-wide plan
is read lazily from ``REPRO_FAULTS`` (strictly validated — garbage
raises :class:`~repro.errors.FaultSpecError` naming the valid sites
and kinds, never a silent no-op), and tests install plans explicitly
via :func:`set_fault_plan` / :func:`use_faults`.

Injected failures raise :class:`InjectedFault`, which is deliberately
**not** a :class:`~repro.errors.ReproError`: it models an *unexpected*
crash (a segfaulting worker, a vanished shm segment), and the recovery
layers must either absorb it or translate it into a typed
``ReproError`` — the chaos suite pins that no ``InjectedFault`` ever
escapes raw from a public entry point.
"""

from __future__ import annotations

import functools
import os
import re
import threading  # repolint: disable=pool-bypass -- Lock for visit counters only, no pool primitives
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, ParamSpec, TypeVar

import numpy as np

from repro.errors import FaultSpecError

__all__ = [
    "FAULT_POINTS",
    "SITES",
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "execute_action",
    "execute_directive",
    "fault_point",
    "faults_active",
    "fire",
    "maybe_fire",
    "parse_fault_specs",
    "plan_from_env",
    "register_fault_site",
    "set_fault_plan",
    "use_faults",
]

P = ParamSpec("P")
R = TypeVar("R")

#: The closed catalogue of injection sites and the failure kinds each
#: supports.  ``REPRO_FAULTS`` validation reads this, so the grammar is
#: checkable without importing the owning modules.
SITES: dict[str, tuple[str, ...]] = {
    # Parent-side, once per map wave, before shard submission.
    "pool.dispatch": ("raise", "hang"),
    # Inside a pool worker (decided parent-side, shipped as a
    # directive): raise, stall, or die abruptly (process backend only).
    "pool.worker": ("raise", "hang", "exit"),
    # Shared-memory segment creation (models /dev/shm exhaustion).
    "arena.export": ("enospc",),
    # Worker-side segment attach (models an externally unlinked
    # segment); decided parent-side, shipped as a directive.
    "arena.attach": ("enoent",),
    # FlowServer workspace checkout from the warm pool.
    "serve.checkout": ("raise",),
    # FlowServer miss-batch solve (one chunk of demand columns).
    "serve.miss": ("raise", "hang"),
}

#: Site name -> qualified name of the registered owner (the decorated
#: function, or the coordinator that consults the site explicitly).
#: Introspection/diagnostic hook, mirroring ``hotpath.HOT_KERNELS``.
FAULT_POINTS: dict[str, str] = {}

#: How long an injected ``hang`` stalls by default.  Short enough that
#: an env-driven sweep with no timeout configured is a stall rather
#: than a wall-clock hazard; tests exercising the timeout/respawn path
#: pass an explicit larger ``hang_seconds``.
DEFAULT_HANG_SECONDS = 0.05


class InjectedFault(RuntimeError):
    """An artificially injected failure.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it stands
    in for the unexpected crashes the recovery layers exist to absorb.
    Seeing one escape a public entry point raw is itself a bug (the
    chaos suite asserts it never happens)."""


@dataclass(frozen=True)
class FaultAction:
    """What a site should do *right now*, as decided by the plan.

    Attributes:
        site: The site that fired.
        kind: One of the site's kinds from :data:`SITES`.
        seconds: Stall length for ``hang`` actions (ignored otherwise).
    """

    site: str
    kind: str
    seconds: float = DEFAULT_HANG_SECONDS


_SPEC_RE = re.compile(
    r"^(?P<site>[a-z_][a-z_.]*[a-z_])"
    r"(?::(?P<kind>[a-z_]+))?"
    r"(?:@(?P<at>\d+))?"
    r"(?:\*(?P<count>\d+|inf))?$"
)

#: Sentinel ``count`` meaning "every visit from ``at`` onward".
UNLIMITED = -1


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic injection: fire ``count`` times at a site,
    starting at its ``at``-th visit (1-based).

    The string grammar (``REPRO_FAULTS`` and the :class:`FaultPlan`
    constructor both accept it) is ``site[:kind][@at][*count]``:

    * ``pool.worker`` — raise on the first visit, once;
    * ``pool.worker:exit@3`` — kill the worker on the third visit;
    * ``arena.export:enospc@1*2`` — ENOSPC on the first two exports;
    * ``serve.miss:raise@2*inf`` — fail every miss chunk from the
      second onward (``count=-1``, :data:`UNLIMITED`).

    Attributes:
        site: A key of :data:`SITES`.
        kind: One of that site's kinds (default: the site's first).
        at: 1-based visit index of the first firing.
        count: Number of consecutive visits that fire
            (:data:`UNLIMITED` for all visits from ``at`` onward).
    """

    site: str
    kind: str = ""
    at: int = 1
    count: int = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(SITES)}"
            )
        kinds = SITES[self.site]
        if not self.kind:
            object.__setattr__(self, "kind", kinds[0])
        elif self.kind not in kinds:
            raise FaultSpecError(
                f"fault site {self.site!r} does not support kind "
                f"{self.kind!r}; expected one of {kinds}"
            )
        if self.at < 1:
            raise FaultSpecError(
                f"fault spec 'at' must be >= 1 (visits are 1-based), "
                f"got {self.at}"
            )
        if self.count < 1 and self.count != UNLIMITED:
            raise FaultSpecError(
                f"fault spec 'count' must be >= 1 or UNLIMITED (-1), "
                f"got {self.count}"
            )

    def covers(self, visit: int) -> bool:
        """Whether this spec fires on the given 1-based visit."""
        if visit < self.at:
            return False
        return self.count == UNLIMITED or visit < self.at + self.count

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``site[:kind][@at][*count]`` clause."""
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise FaultSpecError(
                f"malformed fault spec {text!r}; expected "
                "'site[:kind][@at][*count]' with site in "
                f"{sorted(SITES)} (e.g. 'pool.worker:exit@2' or "
                "'arena.export:enospc*inf')"
            )
        raw_count = match.group("count")
        count = (
            UNLIMITED
            if raw_count == "inf"
            else int(raw_count)
            if raw_count
            else 1
        )
        return cls(
            site=match.group("site"),
            kind=match.group("kind") or "",
            at=int(match.group("at") or 1),
            count=count,
        )


def parse_fault_specs(text: str) -> tuple[FaultSpec, ...]:
    """Parse a comma-separated ``REPRO_FAULTS`` value.

    Empty/whitespace-only input yields no specs; anything else must be
    a comma-separated list of valid clauses — garbage raises
    :class:`~repro.errors.FaultSpecError` naming the bad clause."""
    clauses = [clause.strip() for clause in text.split(",")]
    return tuple(
        FaultSpec.parse(clause) for clause in clauses if clause
    )


def _site_seed(seed: int, site: str) -> int:
    """A stable per-site stream seed (independent of site interleaving)."""
    return (seed << 32) ^ zlib.crc32(site.encode("ascii"))


class FaultPlan:
    """A deterministic schedule of injected failures.

    Built from explicit :class:`FaultSpec` entries (or their string
    forms) and/or a seeded Bernoulli schedule: with ``seed`` and
    ``rate`` set, every visit to a site in ``sites`` (default: all
    sites) fires with probability ``rate``, drawn from a per-site
    ``PCG64`` stream — deterministic for a given seed and per-site
    visit order, regardless of how sites interleave.

    Visit counters are per-site and lock-guarded; :meth:`visits` and
    :meth:`fired` expose snapshots so tests can assert a fault
    actually fired (recovery is supposed to make firing invisible in
    results, so the counters are the only observable).
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec | str] = (),
        *,
        seed: int | None = None,
        rate: float = 0.0,
        sites: Iterable[str] | None = None,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
    ) -> None:
        parsed: list[FaultSpec] = []
        for spec in specs:
            parsed.append(
                FaultSpec.parse(spec) if isinstance(spec, str) else spec
            )
        self.specs: tuple[FaultSpec, ...] = tuple(parsed)
        if not 0.0 <= rate <= 1.0:
            raise FaultSpecError(
                f"fault rate must be in [0, 1], got {rate}"
            )
        if rate > 0.0 and seed is None:
            raise FaultSpecError(
                "a seeded schedule needs an explicit seed: "
                "FaultPlan(seed=..., rate=...) — determinism is the "
                "whole point"
            )
        if hang_seconds < 0.0:
            raise FaultSpecError(
                f"hang_seconds must be >= 0, got {hang_seconds}"
            )
        self.rate = float(rate)
        self.hang_seconds = float(hang_seconds)
        chosen = tuple(sites) if sites is not None else tuple(SITES)
        for site in chosen:
            if site not in SITES:
                raise FaultSpecError(
                    f"unknown fault site {site!r}; expected one of "
                    f"{sorted(SITES)}"
                )
        self._seeded_sites = frozenset(chosen) if rate > 0.0 else frozenset()
        self._rngs: dict[str, np.random.Generator] = {}
        if seed is not None:
            for site in self._seeded_sites:
                self._rngs[site] = np.random.Generator(
                    np.random.PCG64(_site_seed(seed, site))
                )
        self._lock = threading.Lock()
        self._visits: dict[str, int] = {site: 0 for site in SITES}
        self._fired: dict[str, int] = {site: 0 for site in SITES}

    def maybe_fire(self, site: str) -> FaultAction | None:
        """Record a visit to ``site``; return the action to take, if any.

        Explicit specs are consulted first (first matching spec wins),
        then the seeded schedule.  Thread-safe; each call advances the
        site's visit counter exactly once."""
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; expected one of "
                f"{sorted(SITES)}"
            )
        with self._lock:
            self._visits[site] += 1
            visit = self._visits[site]
            kind: str | None = None
            for spec in self.specs:
                if spec.site == site and spec.covers(visit):
                    kind = spec.kind
                    break
            if kind is None and site in self._seeded_sites:
                if self._rngs[site].random() < self.rate:
                    kinds = SITES[site]
                    kind = kinds[
                        int(self._rngs[site].integers(len(kinds)))
                    ]
            if kind is None:
                return None
            self._fired[site] += 1
        return FaultAction(site=site, kind=kind, seconds=self.hang_seconds)

    def visits(self) -> dict[str, int]:
        """Snapshot of per-site visit counts."""
        with self._lock:
            return dict(self._visits)

    def fired(self) -> dict[str, int]:
        """Snapshot of per-site fired counts."""
        with self._lock:
            return dict(self._fired)


def execute_action(action: FaultAction) -> None:
    """Carry out a parent-side fault action.

    ``hang`` stalls for ``action.seconds`` and returns (the caller's
    timeout supervision decides whether the stall is fatal); the error
    kinds raise the exception class the real failure would: ``enospc``
    an :class:`OSError` with ``errno.ENOSPC``, ``enoent`` a
    :class:`FileNotFoundError`, and everything else an
    :class:`InjectedFault`."""
    import errno

    if action.kind == "hang":
        time.sleep(action.seconds)
        return
    if action.kind == "enospc":
        raise OSError(
            errno.ENOSPC,
            f"injected ENOSPC at fault site {action.site!r}",
        )
    if action.kind == "enoent":
        raise FileNotFoundError(
            errno.ENOENT,
            f"injected ENOENT at fault site {action.site!r}",
        )
    raise InjectedFault(
        f"injected {action.kind!r} fault at site {action.site!r}"
    )


def execute_directive(
    directive: tuple[str, float] | None, *, allow_exit: bool = True
) -> None:
    """Carry out a worker-side directive shipped from the coordinator.

    The process pool decides faults parent-side (fork-inherited plan
    state would double-count visits) and ships ``(kind, seconds)``
    tuples inside task payloads; this is the worker half.  ``exit``
    calls ``os._exit`` — an abrupt death the parent must detect by
    timeout — unless ``allow_exit`` is false (thread workers share the
    interpreter, so for them ``exit`` degrades to a raise)."""
    if directive is None:
        return
    kind, seconds = directive
    if kind == "hang":
        time.sleep(seconds)
        return
    if kind == "exit" and allow_exit:
        os._exit(1)
    if kind == "enoent":
        import errno

        raise FileNotFoundError(
            errno.ENOENT, "injected ENOENT attaching shared segment"
        )
    raise InjectedFault(f"injected {kind!r} fault in pool worker")


# ---------------------------------------------------------------------------
# Process-wide activation (mirrors repro.parallel.config's lazy-env
# default: resolved once from REPRO_FAULTS, overridable by tests).

_active: FaultPlan | None = None
_resolved: bool = False


def plan_from_env(
    environ: Mapping[str, str] | None = None,
) -> FaultPlan | None:
    """Build the plan named by ``REPRO_FAULTS`` (``None`` when unset).

    The value is a comma-separated list of ``site[:kind][@at][*count]``
    clauses, validated strictly against :data:`SITES` — a typo raises
    :class:`~repro.errors.FaultSpecError` instead of silently running
    fault-free (the same contract ``REPRO_WORKERS`` has)."""
    env = os.environ if environ is None else environ
    raw = (env.get("REPRO_FAULTS") or "").strip()
    if not raw:
        return None
    specs = parse_fault_specs(raw)
    if not specs:
        return None
    return FaultPlan(specs)


def active_plan() -> FaultPlan | None:
    """The process-wide plan (environment-derived, read lazily once)."""
    global _active, _resolved
    if not _resolved:
        _active = plan_from_env()
        _resolved = True
    return _active


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the process-wide plan; returns the previous.

    Unlike :func:`repro.parallel.config.set_default_config`, ``None``
    here means *disarmed* (not "re-read the environment"): tests use
    it to guarantee a fault-free region regardless of ``REPRO_FAULTS``."""
    global _active, _resolved
    previous = _active if _resolved else plan_from_env()
    _active = plan
    _resolved = True
    return previous


@contextmanager
def use_faults(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Temporarily install ``plan`` as the process-wide fault plan."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def faults_active() -> bool:
    """Whether any plan is armed (used by the pools to apply the
    fallback map timeout that keeps chaos sweeps hang-free)."""
    return active_plan() is not None


def maybe_fire(site: str) -> FaultAction | None:
    """Consult the active plan for ``site`` (``None`` when disarmed)."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.maybe_fire(site)


def fire(site: str) -> None:
    """Consult the active plan for ``site`` and execute any action.

    The explicit-call form of :func:`fault_point`, for coordinator
    code whose injection site is a code path rather than a function."""
    action = maybe_fire(site)
    if action is not None:
        execute_action(action)


def register_fault_site(site: str, owner: str) -> None:
    """Record ``owner`` (a qualified name) as the code consulting
    ``site`` explicitly via :func:`fire` / :func:`maybe_fire`."""
    if site not in SITES:
        raise FaultSpecError(
            f"unknown fault site {site!r}; expected one of "
            f"{sorted(SITES)}"
        )
    FAULT_POINTS[site] = owner


def fault_point(
    name: str, *, kinds: tuple[str, ...] | None = None
) -> Callable[[Callable[P, R]], Callable[P, R]]:
    """Mark a function as fault-injection site ``name``.

    Registers the function's qualified name in :data:`FAULT_POINTS`
    and wraps it with a guard that consults the active plan before
    each call.  When no plan is armed the guard is one module-global
    read; the wrapped function is exposed as ``__wrapped__`` for
    callers needing the raw object.  ``kinds``, when given, must match
    the site's catalogue entry — a drifting declaration fails at
    import time rather than silently injecting the wrong failure."""
    if name not in SITES:
        raise FaultSpecError(
            f"unknown fault site {name!r}; expected one of "
            f"{sorted(SITES)}"
        )
    if kinds is not None and tuple(kinds) != SITES[name]:
        raise FaultSpecError(
            f"fault site {name!r} supports kinds {SITES[name]}, the "
            f"decorator declared {tuple(kinds)}"
        )

    def decorate(func: Callable[P, R]) -> Callable[P, R]:
        FAULT_POINTS[name] = f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def guard(*args: P.args, **kwargs: P.kwargs) -> R:
            if _resolved and _active is None:
                return func(*args, **kwargs)
            action = maybe_fire(name)
            if action is not None:
                execute_action(action)
            return func(*args, **kwargs)

        guard.__fault_point__ = name  # type: ignore[attr-defined]
        return guard

    return decorate
