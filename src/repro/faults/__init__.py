"""Deterministic fault injection (see :mod:`repro.faults.plan`).

Quick tour::

    from repro.faults import FaultPlan, use_faults

    plan = FaultPlan(["pool.worker:exit@1"])      # kill the first shard
    with use_faults(plan):
        result = server.route_batch(demands)       # recovered, identical
    assert plan.fired()["pool.worker"] == 1

or process-wide via the environment (strictly validated)::

    REPRO_FAULTS="arena.export:enospc@1,pool.worker@2*inf"
"""

from repro.faults.plan import (
    FAULT_POINTS,
    SITES,
    FaultAction,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    execute_action,
    execute_directive,
    fault_point,
    faults_active,
    fire,
    maybe_fire,
    parse_fault_specs,
    plan_from_env,
    register_fault_site,
    set_fault_plan,
    use_faults,
)

__all__ = [
    "FAULT_POINTS",
    "SITES",
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "execute_action",
    "execute_directive",
    "fault_point",
    "faults_active",
    "fire",
    "maybe_fire",
    "parse_fault_specs",
    "plan_from_env",
    "register_fault_site",
    "set_fault_plan",
    "use_faults",
]
