"""The hot-kernel registry: ``@hot_kernel`` marks allocation-free code.

PR 3 made AlmostRoute's inner loop allocation-free on a reusable
:class:`~repro.core.almost_route.RouteWorkspace`; PR 6 extended the
contract to the batched plane solvers. The contract is easy to erode:
one innocuous ``np.zeros`` inside a gradient step reintroduces a
per-iteration allocation (and first-touch page faulting) that the
workspace design exists to avoid, and nothing crashes — the solve is
just slower, forever.

``@hot_kernel`` is a zero-overhead marker: it returns the function
unchanged (same object — process-pool pickling and monkeypatching see
no wrapper) and only sets an attribute and records the qualified name
in :data:`HOT_KERNELS`. The static side of the contract lives in
repolint's ``hot-path-alloc`` rule, which flags allocating NumPy
constructors lexically inside any decorated function unless the line
carries an ``# alloc-ok (reason)`` marker — the escape hatch for
setup/fallback paths serving unbuffered callers.

This module is a dependency leaf (like :mod:`repro.dtypes`): it
imports nothing from the package, so the innermost kernels — including
:mod:`repro.graphs.graph`, which sits *below* ``repro.util`` in the
import graph — can decorate without cycles.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["HOT_KERNELS", "hot_kernel"]

F = TypeVar("F", bound=Callable)

#: Qualified names (``module.qualname``) of every registered hot
#: kernel, in decoration order. Diagnostic/introspection hook; the
#: static rule reads decorator syntax, not this set.
HOT_KERNELS: list[str] = []


def hot_kernel(func: F) -> F:
    """Mark ``func`` as under the allocation-free hot-path contract.

    Returns ``func`` itself (no wrapper): the marker costs nothing at
    call time and preserves function identity for pickling and
    monkeypatched tests.
    """
    func.__hot_kernel__ = True  # type: ignore[attr-defined]
    HOT_KERNELS.append(f"{func.__module__}.{func.__qualname__}")
    return func
