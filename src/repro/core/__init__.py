"""The paper's primary contribution: approximator + gradient descent."""

from repro.core.softmax import (
    smax,
    smax_and_gradient,
    smax_and_gradient_batch,
    smax_gradient,
)
from repro.core.approximator import (
    StackedTreeOperator,
    TreeCongestionApproximator,
    TreeOperator,
    build_congestion_approximator,
    estimate_alpha_st,
    racke_sample_trees,
)
from repro.core.almost_route import (
    AlmostRouteResult,
    BatchAlmostRouteResult,
    BatchRouteWorkspace,
    RouteWorkspace,
    almost_route,
    almost_route_batch,
)
from repro.core.maxflow import (
    ApproxFlow,
    ApproxMaxFlow,
    max_flow,
    min_congestion_flow,
)
from repro.core.rounds import RoundEstimate, estimate_rounds
from repro.core.accelerated import (
    accelerated_almost_route,
    accelerated_almost_route_batch,
)
from repro.core.binary_search import (
    BinarySearchMaxFlow,
    max_flow_binary_search,
)

__all__ = [
    "smax",
    "smax_and_gradient",
    "smax_and_gradient_batch",
    "smax_gradient",
    "StackedTreeOperator",
    "TreeCongestionApproximator",
    "TreeOperator",
    "build_congestion_approximator",
    "estimate_alpha_st",
    "racke_sample_trees",
    "AlmostRouteResult",
    "BatchAlmostRouteResult",
    "BatchRouteWorkspace",
    "RouteWorkspace",
    "almost_route",
    "almost_route_batch",
    "ApproxFlow",
    "ApproxMaxFlow",
    "max_flow",
    "min_congestion_flow",
    "RoundEstimate",
    "estimate_rounds",
    "accelerated_almost_route",
    "accelerated_almost_route_batch",
    "BinarySearchMaxFlow",
    "max_flow_binary_search",
]
