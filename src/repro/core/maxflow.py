"""Algorithm 1 — the top-level approximate max-flow algorithm.

Pipeline (paper §9, Algorithm 1):

1. call AlmostRoute on the demand with accuracy ε;
2. repeat AlmostRoute on the *residual* demand (with constant accuracy)
   for ~log m rounds, driving the unrouted demand to negligible mass;
3. route the final residual exactly over a maximum-capacity spanning
   tree (Lemma 9.1) — conservation becomes exact;
4. for max flow: run the above on the unit s-t demand and scale the
   result by its own max congestion. By max-flow min-cut, the optimal
   congestion of the unit demand is 1/maxflow, so the scaled value is
   ≥ maxflow/(1 + ε′) where 1 + ε′ is the descent's congestion
   sub-optimality (this replaces the paper's equivalent outer binary
   search over F).

Every returned flow is exactly conserving and exactly feasible
(capacity-respecting); quality is measured against the Dinic oracle in
tests and benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.almost_route import (
    AlmostRouteResult,
    RouteWorkspace,
    almost_route,
)
from repro.core.approximator import (
    TreeCongestionApproximator,
    build_congestion_approximator,
)
from repro.errors import InvalidDemandError
from repro.flow.mst import maximum_spanning_tree
from repro.graphs.graph import Graph
from repro.graphs.trees import tree_route_demand
from repro.parallel.config import ParallelConfig
from repro.util.rng import as_generator
from repro.util.validation import check_demand, st_demand

__all__ = ["ApproxFlow", "ApproxMaxFlow", "min_congestion_flow", "max_flow"]


@dataclass
class ApproxFlow:
    """A routed demand with congestion statistics.

    Attributes:
        flow: Signed flow per edge; routes ``demand`` exactly.
        demand: The demand vector that was routed.
        congestion: ``‖C⁻¹f‖_∞`` of the returned flow.
        lower_bound: The approximator's congestion lower bound ‖Rb‖∞
            (any feasible routing of ``demand`` has congestion at least
            this, since every row of R is a true cut of G).
        iterations: Total gradient steps across AlmostRoute calls.
        almost_route_calls: Number of AlmostRoute invocations.
        residual_mass: ℓ1 mass of demand routed via the spanning tree
            in the final fix-up step.
        converged: Whether every AlmostRoute call converged.
    """

    flow: np.ndarray
    demand: np.ndarray
    congestion: float
    lower_bound: float
    iterations: int = 0
    almost_route_calls: int = 0
    residual_mass: float = 0.0
    converged: bool = True

    @property
    def approximation_ratio_bound(self) -> float:
        """congestion / lower_bound — a certified upper bound on how far
        the flow is from the optimal congestion (≥ 1; finite only when
        the lower bound is positive)."""
        if self.lower_bound <= 0:
            return float("inf") if self.congestion > 0 else 1.0
        return self.congestion / self.lower_bound


@dataclass
class ApproxMaxFlow:
    """Approximate max-flow result.

    Attributes:
        value: Flow value (≥ maxflow / achieved approximation ratio).
        flow: Feasible s-t flow achieving ``value``.
        source / sink: The terminals.
        congestion_result: The underlying min-congestion routing.
        certified_upper_bound: ``value · approximation_ratio_bound`` —
            a certified upper bound on the true max flow derived from
            the approximator's cut rows.
    """

    value: float
    flow: np.ndarray
    source: int
    sink: int
    congestion_result: ApproxFlow
    certified_upper_bound: float = field(default=float("inf"))


def min_congestion_flow(
    graph: Graph,
    demand: np.ndarray,
    epsilon: float = 0.25,
    approximator: TreeCongestionApproximator | None = None,
    rng: np.random.Generator | int | None = None,
    max_iterations: int | None = None,
    residual_rounds: int | None = None,
    workspace: RouteWorkspace | None = None,
    parallel: ParallelConfig | None = None,
    initial_flow: np.ndarray | None = None,
) -> ApproxFlow:
    """Route ``demand`` with approximately minimal congestion.

    Args:
        graph: Connected capacitated graph.
        demand: Demand vector (sums to zero).
        epsilon: Accuracy of the first AlmostRoute call.
        approximator: Reuse a prebuilt R (recommended when routing many
            demands on one graph); built fresh otherwise.
        rng: Randomness for approximator construction.
        max_iterations: Per-call gradient budget override.
        residual_rounds: Number of residual AlmostRoute rounds
            (default ``ceil(log2 m) + 1``, Algorithm 1 line 2).
        workspace: Optional preallocated AlmostRoute workspace; built
            once here and shared by every residual round (callers
            sweeping many demands — e.g. the binary search — pass one
            in to amortize it further).
        parallel: Optional sharded-execution config for the R products
            across every residual round (bit-identical to serial).
        initial_flow: Optional warm-start seed for the *first*
            AlmostRoute round (a previous epoch's flow for this demand,
            rescaled via :func:`repro.graphs.journal.rescale_flow`);
            residual rounds refine from the achieved residual as usual,
            so the exit guarantees are unchanged.

    Returns:
        An :class:`ApproxFlow` whose flow routes ``demand`` exactly.
    """
    demand = check_demand(graph, demand)
    rng = as_generator(rng)
    if approximator is None:
        approximator = build_congestion_approximator(
            graph, rng=rng, parallel=parallel
        )
    elif parallel is not None:
        approximator = approximator.with_parallel(parallel)
    workspace = RouteWorkspace.ensure(workspace, graph, approximator)
    m = graph.num_edges
    if residual_rounds is None:
        residual_rounds = int(math.ceil(math.log2(max(m, 2)))) + 1

    lower_bound = approximator.estimate(demand)
    total_flow = np.zeros(m)
    iterations = 0
    calls = 0
    converged = True
    residual = demand.copy()
    demand_scale = float(np.abs(demand).max(initial=0.0))

    for round_index in range(residual_rounds + 1):
        if float(np.abs(residual).max(initial=0.0)) <= 1e-12 * max(
            demand_scale, 1.0
        ):
            break
        accuracy = epsilon if round_index == 0 else 0.5
        result: AlmostRouteResult = almost_route(
            graph,
            approximator,
            residual,
            accuracy,
            max_iterations=max_iterations,
            workspace=workspace,
            initial_flow=initial_flow if round_index == 0 else None,
        )
        total_flow += result.flow
        iterations += result.iterations
        calls += 1
        converged = converged and result.converged
        residual = demand + graph.excess(total_flow)

    residual_mass = float(np.abs(residual).sum())
    if residual_mass > 0:
        tree = maximum_spanning_tree(graph)
        total_flow += tree_route_demand(graph, tree, residual)
    congestion = float(graph.congestion(total_flow).max(initial=0.0))
    return ApproxFlow(
        flow=total_flow,
        demand=demand,
        congestion=congestion,
        lower_bound=lower_bound,
        iterations=iterations,
        almost_route_calls=calls,
        residual_mass=residual_mass,
        converged=converged,
    )


def max_flow(
    graph: Graph,
    source: int,
    sink: int,
    epsilon: float = 0.25,
    approximator: TreeCongestionApproximator | None = None,
    rng: np.random.Generator | int | None = None,
    max_iterations: int | None = None,
    workspace: RouteWorkspace | None = None,
    parallel: ParallelConfig | None = None,
) -> ApproxMaxFlow:
    """Compute a (1 + ε′)-approximate maximum s-t flow (Theorem 1.1).

    Args:
        graph: Connected undirected capacitated graph.
        source: Source node s.
        sink: Sink node t (distinct from s).
        epsilon: Accuracy parameter of the congestion minimization.
        approximator: Optional prebuilt congestion approximator.
        rng: Randomness for approximator construction.
        max_iterations: Per-AlmostRoute gradient budget override.
        workspace: Optional preallocated AlmostRoute workspace, reused
            across the residual rounds (and by repeat callers).
        parallel: Optional sharded-execution config for the R products
            (bit-identical to serial; see :mod:`repro.parallel`).

    Returns:
        An :class:`ApproxMaxFlow` whose ``flow`` is exactly feasible and
        conserving for the returned ``value``.

    Raises:
        InvalidDemandError: If source == sink.
    """
    if source == sink:
        raise InvalidDemandError("source and sink must differ")
    graph.require_connected()
    rng = as_generator(rng)
    if approximator is None:
        approximator = build_congestion_approximator(
            graph, rng=rng, parallel=parallel
        )
        parallel = None  # already carried by the approximator
    demand = st_demand(graph, source, sink, 1.0)
    routed = min_congestion_flow(
        graph,
        demand,
        epsilon=epsilon,
        approximator=approximator,
        rng=rng,
        max_iterations=max_iterations,
        workspace=workspace,
        parallel=parallel,
    )
    congestion = routed.congestion
    if congestion <= 0:
        raise InvalidDemandError(
            "unit demand routed with zero congestion; graph degenerate"
        )
    # Scaling: the unit-demand routing has congestion ρ; dividing by ρ
    # yields a feasible s-t flow of value 1/ρ. Optimal congestion is
    # exactly 1/maxflow (max-flow min-cut), so value ≥ maxflow / ratio.
    value = 1.0 / congestion
    flow = routed.flow / congestion
    # Certified upper bound from the approximator's cut rows:
    # lower_bound ≤ opt-congestion = 1/maxflow  ⇒  maxflow ≤ 1/lower.
    upper = 1.0 / routed.lower_bound if routed.lower_bound > 0 else float("inf")
    return ApproxMaxFlow(
        value=value,
        flow=flow,
        source=source,
        sink=sink,
        congestion_result=routed,
        certified_upper_bound=upper,
    )
