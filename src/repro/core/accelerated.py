"""Accelerated AlmostRoute (paper footnote 3).

Sherman notes that Nesterov's accelerated gradient method improves the
iteration count of AlmostRoute from O(ε⁻³ α² log² n) to
O(ε⁻² α log² n). This module implements the momentum variant: the
gradient is evaluated at the look-ahead point
``z_k = f_k + (k-1)/(k+2) · (f_k − f_{k-1})`` and the step is applied
from ``z_k``, with the classical restart-on-increase safeguard (momentum
is reset whenever the potential rises, which keeps the method robust on
this non-Euclidean geometry).

The scaled-potential bookkeeping (17/16 re-scalings, kb/kf factors) is
identical to :func:`repro.core.almost_route.almost_route`; benchmarks
compare the two head-to-head (the ablation bench E6a2). Like the plain
variant, the inner loop is allocation free: all per-iteration vectors
live in a reusable :class:`~repro.core.almost_route.RouteWorkspace`
(plus the f/f_prev/z triple, which rotates by buffer swap), products
run through the flat stacked operator with ``out=``, and re-scaling
steps rescale the cached soft-max arguments instead of re-evaluating
the residual and the R product.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.almost_route import (
    MAX_SCALINGS_PER_STEP,
    SCALE_STEP,
    TARGET_FACTOR,
    AlmostRouteResult,
    BatchAlmostRouteResult,
    BatchRouteWorkspace,
    RouteWorkspace,
    _evaluate,
    _evaluate_batch,
    _gradient_delta,
    _gradient_delta_batch,
    _rescale_cached,
    _rescale_masked,
    _sign_step,
    _sign_step_batch,
)
from repro.core.approximator import TreeCongestionApproximator
from repro.errors import ConvergenceError, GraphError
from repro.graphs.csr import WIDE_DTYPE
from repro.graphs.graph import Graph
from repro.parallel.config import ParallelConfig
from repro.util.validation import check_demand, check_demand_batch

__all__ = ["accelerated_almost_route", "accelerated_almost_route_batch"]


def accelerated_almost_route(
    graph: Graph,
    approximator: TreeCongestionApproximator,
    demand: np.ndarray,
    epsilon: float,
    max_iterations: int | None = None,
    raise_on_budget: bool = False,
    workspace: RouteWorkspace | None = None,
    parallel: "ParallelConfig | None" = None,
    initial_flow: np.ndarray | None = None,
) -> AlmostRouteResult:
    """Momentum-accelerated Algorithm 2.

    Same contract as :func:`repro.core.almost_route.almost_route`
    (including the optional sharded-execution ``parallel`` override and
    the ``initial_flow=`` warm start — the seed primes both the iterate
    and the momentum anchor ``f_prev``, so the first step is plain
    gradient descent from the seed, zero momentum); on
    well-conditioned instances it converges in noticeably fewer
    iterations (the footnote-3 α²→α improvement shows up as a smaller
    effective step-count constant).
    """
    if parallel is not None:
        approximator = approximator.with_parallel(parallel)
    demand = check_demand(graph, demand)
    n = graph.num_nodes
    m = graph.num_edges
    alpha = max(1.0, float(approximator.alpha))
    eps = float(epsilon)
    if not 0 < eps <= 1:
        raise GraphError(f"epsilon must be in (0, 1], got {epsilon}")
    ln_n = math.log(max(n, 3))
    target = TARGET_FACTOR * ln_n / eps
    if max_iterations is None:
        max_iterations = int(min(300_000, 200 + 40 * alpha * ln_n / eps**2))

    caps = graph.capacities()
    tails, heads = graph.edge_index_arrays()
    norm_rb = approximator.estimate(demand)
    if norm_rb <= 0:
        return AlmostRouteResult(
            flow=np.zeros(m),
            residual=demand.copy(),
            iterations=0,
            scalings=0,
            potential=0.0,
            delta=0.0,
            converged=True,
        )
    ws = RouteWorkspace.ensure(workspace, graph, approximator)
    two_alpha = 2.0 * alpha
    kb = two_alpha * norm_rb / target
    b = demand / kb
    f = ws.flow
    f_prev = ws.flow_prev
    z = ws.lookahead
    if initial_flow is None:
        f[:] = 0.0
    else:
        seed = np.asarray(initial_flow, dtype=float)
        if seed.shape != (m,):
            raise GraphError(
                f"initial_flow has shape {seed.shape}, expected ({m},)"
            )
        np.divide(seed, kb, out=f)
    f_prev[:] = f
    kf = 1.0
    scalings = 0
    iterations = 0
    momentum_age = 0
    last_potential = float("inf")
    potential = 0.0
    delta = float("inf")
    converged = False

    while iterations < max_iterations:
        potential = _evaluate(ws, graph, approximator, caps, two_alpha, b, f)
        inner_guard = 0
        while potential < target and inner_guard < MAX_SCALINGS_PER_STEP:
            np.multiply(f, SCALE_STEP, out=f)
            np.multiply(f_prev, SCALE_STEP, out=f_prev)
            np.multiply(b, SCALE_STEP, out=b)
            kf *= SCALE_STEP
            scalings += 1
            inner_guard += 1
            potential = _rescale_cached(ws)
        # Momentum restart when the potential went up.
        if potential > last_potential:
            momentum_age = 0
            f_prev[:] = f
        last_potential = potential
        beta = momentum_age / (momentum_age + 3.0)
        np.subtract(f, f_prev, out=z)
        np.multiply(z, beta, out=z)
        np.add(z, f, out=z)
        _evaluate(ws, graph, approximator, caps, two_alpha, b, z)
        delta = _gradient_delta(ws, approximator, caps, tails, heads, two_alpha)
        if delta < eps / 4.0:
            converged = True
            break
        _sign_step(ws, caps, delta / (1.0 + 4.0 * alpha**2))
        # f_prev ← f, f ← z − step: rotate the buffer triple so the
        # discarded previous-previous iterate receives the new point.
        np.subtract(z, ws.step, out=f_prev)
        f, f_prev = f_prev, f
        momentum_age += 1
        iterations += 1

    if not converged and raise_on_budget:
        raise ConvergenceError(
            f"accelerated AlmostRoute did not converge in "
            f"{max_iterations} iterations (delta={delta:.3g})"
        )
    unscale = kb / kf
    flow_out = f * unscale
    return AlmostRouteResult(
        flow=flow_out,
        residual=demand + graph.excess(flow_out),
        iterations=iterations,
        scalings=scalings,
        potential=potential,
        delta=delta,
        converged=converged,
    )


def accelerated_almost_route_batch(
    graph: Graph,
    approximator: TreeCongestionApproximator,
    demands: np.ndarray,
    epsilon: float,
    max_iterations: int | None = None,
    raise_on_budget: bool = False,
    workspace: BatchRouteWorkspace | None = None,
    parallel: "ParallelConfig | None" = None,
    initial_flows: np.ndarray | None = None,
) -> BatchAlmostRouteResult:
    """Momentum-accelerated Algorithm 2 on ``Q`` stacked demands.

    Same contract as
    :func:`repro.core.almost_route.almost_route_batch`, with per-query
    momentum ages, restart-on-increase and look-ahead points. Frozen
    (converged) columns are kept bit-exact through the buffer rotation
    by pinning their look-ahead row to the converged flow
    (``z[q] = f[q]``) and their step to exactly ``0.0``, so the rotated
    plane carries the final iterate unchanged; every column matches the
    one-shot :func:`accelerated_almost_route` bit for bit.
    """
    if parallel is not None:
        approximator = approximator.with_parallel(parallel)
    demands = check_demand_batch(graph, demands)
    num_queries = demands.shape[0]
    n = graph.num_nodes
    m = graph.num_edges
    if num_queries == 0:
        return BatchAlmostRouteResult(
            flows=np.zeros((0, m)),
            residuals=np.zeros((0, n)),
            iterations=np.zeros(0, dtype=WIDE_DTYPE),
            scalings=np.zeros(0, dtype=WIDE_DTYPE),
            potentials=np.zeros(0),
            deltas=np.zeros(0),
            converged=np.zeros(0, dtype=bool),
        )
    alpha = max(1.0, float(approximator.alpha))
    eps = float(epsilon)
    if not 0 < eps <= 1:
        raise GraphError(f"epsilon must be in (0, 1], got {epsilon}")
    ln_n = math.log(max(n, 3))
    target = TARGET_FACTOR * ln_n / eps
    if max_iterations is None:
        max_iterations = int(min(300_000, 200 + 40 * alpha * ln_n / eps**2))

    caps = graph.capacities()
    tails, heads = graph.edge_index_arrays()
    ws = BatchRouteWorkspace.ensure(workspace, graph, approximator, num_queries)

    two_alpha = 2.0 * alpha
    norm_rb = approximator.estimate_batch(demands)
    active = norm_rb > 0
    np.multiply(norm_rb, two_alpha, out=ws.kb)
    np.divide(ws.kb, target, out=ws.kb)
    safe_kb = np.where(active, ws.kb, 1.0)
    np.divide(demands, safe_kb[:, None], out=ws.b)
    ws.b[~active] = 0.0
    b = ws.b
    f = ws.flow
    f_prev = ws.flow_prev
    z = ws.lookahead
    if initial_flows is None:
        f[:] = 0.0
    else:
        seeds = np.asarray(initial_flows, dtype=float)
        if seeds.shape != (num_queries, m):
            raise GraphError(
                f"initial_flows has shape {seeds.shape}, expected "
                f"({num_queries}, {m})"
            )
        np.divide(seeds, safe_kb[:, None], out=f)
        f[~active] = 0.0
    f_prev[:] = f
    ws.kf[:] = 1.0
    ws.scalings[:] = 0
    ws.iterations[:] = 0
    ws.potential[:] = 0.0
    momentum_age = np.zeros(num_queries, dtype=WIDE_DTYPE)
    last_potential = np.full(num_queries, float("inf"))
    beta = np.empty(num_queries)
    live = ws.live
    live[:] = active
    ws.converged[:] = ~active
    potential_out = np.zeros(num_queries)
    delta_out = np.full(num_queries, float("inf"))
    delta_out[~active] = 0.0
    it = 0

    while live.any() and it < max_iterations:
        potential = _evaluate_batch(
            ws, graph, approximator, caps, two_alpha, b, f
        )
        ws.inner_guard[:] = 0
        while True:
            np.less(potential, target, out=ws.mask)
            ws.mask &= live
            ws.mask &= ws.inner_guard < MAX_SCALINGS_PER_STEP
            if not ws.mask.any():
                break
            ws.factor[:] = 1.0
            ws.factor[ws.mask] = SCALE_STEP
            np.multiply(f, ws.factor[:, None], out=f)
            np.multiply(f_prev, ws.factor[:, None], out=f_prev)
            np.multiply(b, ws.factor[:, None], out=b)
            ws.kf[ws.mask] *= SCALE_STEP
            ws.scalings[ws.mask] += 1
            ws.inner_guard[ws.mask] += 1
            potential = _rescale_masked(ws, ws.mask)
        potential_out[live] = potential[live]
        # Per-query momentum restart when the potential went up.
        np.greater(potential, last_potential, out=ws.mask)
        ws.mask &= live
        if ws.mask.any():
            momentum_age[ws.mask] = 0
            f_prev[ws.mask] = f[ws.mask]
        last_potential[live] = potential[live]
        np.divide(momentum_age, momentum_age + 3.0, out=beta)
        np.subtract(f, f_prev, out=z)
        np.multiply(z, beta[:, None], out=z)
        np.add(z, f, out=z)
        _evaluate_batch(ws, graph, approximator, caps, two_alpha, b, z)
        delta = _gradient_delta_batch(
            ws, approximator, caps, tails, heads, two_alpha
        )
        delta_out[live] = delta[live]
        np.less(delta, eps / 4.0, out=ws.mask)
        ws.mask &= live
        if ws.mask.any():
            ws.iterations[ws.mask] = it
            ws.converged[ws.mask] = True
            live &= ~ws.mask
        # Pin every frozen column's look-ahead row to its converged
        # flow: the rotation below then writes back exactly f (z − 0.0
        # is a bit-exact no-op), so frozen iterates survive the swap.
        frozen = ~live
        if frozen.any():
            z[frozen] = f[frozen]
            if not live.any():
                break
        _sign_step_batch(ws, caps, 1.0 + 4.0 * alpha**2)
        # f_prev ← f, f ← z − step: rotate the plane triple so the
        # discarded previous-previous iterate receives the new points.
        np.subtract(z, ws.step, out=f_prev)
        f, f_prev = f_prev, f
        momentum_age[live] += 1
        it += 1

    ws.iterations[live] = it
    if raise_on_budget and live.any():
        raise ConvergenceError(
            f"accelerated AlmostRoute batch: {int(live.sum())} of "
            f"{num_queries} queries did not converge in "
            f"{max_iterations} iterations"
        )
    unscale = np.divide(ws.kb, ws.kf)
    flows = f * unscale[:, None]
    residuals = demands + graph.excess_batch(flows)
    flows[~active] = 0.0
    residuals[~active] = demands[~active]
    return BatchAlmostRouteResult(
        flows=flows,
        residuals=residuals,
        iterations=ws.iterations.copy(),
        scalings=ws.scalings.copy(),
        potentials=potential_out,
        deltas=delta_out,
        converged=ws.converged.copy(),
    )
