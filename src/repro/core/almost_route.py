"""Algorithm 2 — AlmostRoute, Sherman's scaled gradient descent (§9.1).

Minimizes the potential

    φ(f) = smax(C⁻¹ f) + smax(2α · R · r(f)),   r(f) = b + B f,

where ``r(f)`` is the *residual demand* (the library's convention: a
flow routes b when the net outflow of every node equals b_v, i.e.
``b + Bf = 0`` with ``Bf`` the net-inflow operator).

The demand is pre-scaled so φ starts at Θ(ε⁻¹ log n) and is re-scaled
by 17/16 whenever the potential drops below that sharpness threshold
(Algorithm 2 lines 4–5); each iteration moves every edge by
``cap(e) · δ / (1 + 4α²)`` against the gradient sign, where
``δ = Σ_e cap(e) · |∂φ/∂f_e|``; termination once δ < ε/4.

Gradient structure (paper Eqs. (3)–(4)): the φ₂ part needs one R
product (for y) and one Rᵀ product (for the node potentials π); then
``∂φ₂/∂f_e = 2α (π_head − π_tail)``. Distributedly these are the
convergecast/downcast of Corollary 9.3; here they are one flat stacked
pass over all virtual trees
(:class:`~repro.core.stacked.StackedTreeOperator`).

The inner loop is **allocation free**: every per-iteration vector
(residual, y, gradients, sign-step) lives in a
:class:`RouteWorkspace` that callers may reuse across AlmostRoute
invocations (the residual rounds of ``min_congestion_flow``, the
binary-search sweep of ``max_flow_binary_search``), and every NumPy
step writes through ``out=``. The 17/16 re-scaling sub-loop exploits
linearity — ``C⁻¹(sf)`` and ``R(b + Bf)`` both scale by ``s`` — so a
scaling step re-evaluates only the two soft-maxes instead of paying a
full residual + R product evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.approximator import TreeCongestionApproximator
from repro.core.softmax import smax_and_gradient
from repro.errors import ConvergenceError
from repro.graphs.graph import Graph
from repro.parallel.config import ParallelConfig
from repro.util.validation import check_demand

__all__ = ["AlmostRouteResult", "RouteWorkspace", "almost_route"]

#: Scale-up factor of Algorithm 2 line 5.
SCALE_STEP = 17.0 / 16.0
#: Sharpness target multiplier: φ is kept at >= TARGET_FACTOR·ln(n)/ε.
TARGET_FACTOR = 16.0
#: Hard cap on consecutive 17/16 re-scalings per outer iteration.
MAX_SCALINGS_PER_STEP = 4096


class RouteWorkspace:
    """Preallocated buffers for the AlmostRoute inner loop.

    One workspace is sized for one (graph, approximator) pair — m-, n-
    and num_rows-shaped vectors — and is reused across gradient steps
    and across AlmostRoute calls. Build it once per solve sweep
    (``min_congestion_flow`` and ``max_flow_binary_search`` do this
    automatically) and hand it to every call on the same pair.
    """

    def __init__(
        self, graph: Graph, approximator: TreeCongestionApproximator
    ) -> None:
        m = graph.num_edges
        n = graph.num_nodes
        rows = approximator.num_rows
        self.shape_key = (m, n, rows)
        # m-shaped
        self.flow = np.empty(m)
        self.flow_prev = np.empty(m)
        self.lookahead = np.empty(m)
        self.c1 = np.empty(m)
        self.g1 = np.empty(m)
        self.grad = np.empty(m)
        self.step = np.empty(m)
        # n-shaped
        self.excess = np.empty(n)
        self.residual = np.empty(n)
        self.pi = np.empty(n)
        # row-shaped
        self.y = np.empty(rows)
        self.g2 = np.empty(rows)
        # Soft-max pair scratches (2×-shaped): both exponential halves
        # of smax_and_gradient live in one contiguous buffer so a
        # single np.exp evaluates them (see repro.core.softmax).
        self.m_scratch = np.empty(2 * m)
        self.r_scratch = np.empty(2 * rows)

    @classmethod
    def ensure(
        cls,
        workspace: "RouteWorkspace | None",
        graph: Graph,
        approximator: TreeCongestionApproximator,
    ) -> "RouteWorkspace":
        """Return ``workspace`` if it fits the pair, else a fresh one."""
        key = (graph.num_edges, graph.num_nodes, approximator.num_rows)
        if workspace is not None and workspace.shape_key == key:
            return workspace
        return cls(graph, approximator)


def _evaluate(
    ws: RouteWorkspace,
    graph: Graph,
    approximator: TreeCongestionApproximator,
    caps: np.ndarray,
    two_alpha: float,
    b: np.ndarray,
    flow: np.ndarray,
) -> float:
    """Full potential evaluation at ``flow``; fills ws.c1/g1/y/g2.

    Shared verbatim by :func:`almost_route` and
    :func:`~repro.core.accelerated.accelerated_almost_route` so the two
    solvers can never diverge in fold order (the bit-identity contract
    of the flat/per-tree paths rides on these exact sequences).
    """
    graph.excess(flow, out=ws.excess)
    np.add(b, ws.excess, out=ws.residual)
    np.divide(flow, caps, out=ws.c1)
    phi1, _ = smax_and_gradient(ws.c1, out=ws.g1, scratch=ws.m_scratch)
    approximator.apply(ws.residual, out=ws.y)
    np.multiply(ws.y, two_alpha, out=ws.y)
    phi2, _ = smax_and_gradient(ws.y, out=ws.g2, scratch=ws.r_scratch)
    return phi1 + phi2


def _rescale_cached(ws: RouteWorkspace) -> float:
    """One 17/16 sharpening step on the cached soft-max arguments.

    Both potential halves are linear in (f, b) — ``C⁻¹(sf)`` and
    ``R(s·(b + Bf))`` scale by s — so a scaling step only rescales the
    cached arguments and re-runs the two soft-maxes: no residual
    recomputation, no R product. Returns the new potential.
    """
    np.multiply(ws.c1, SCALE_STEP, out=ws.c1)
    np.multiply(ws.y, SCALE_STEP, out=ws.y)
    phi1, _ = smax_and_gradient(ws.c1, out=ws.g1, scratch=ws.m_scratch)
    phi2, _ = smax_and_gradient(ws.y, out=ws.g2, scratch=ws.r_scratch)
    return phi1 + phi2


def _gradient_delta(
    ws: RouteWorkspace,
    approximator: TreeCongestionApproximator,
    caps: np.ndarray,
    tails: np.ndarray,
    heads: np.ndarray,
    two_alpha: float,
) -> float:
    """Gradient (Eqs. (3)–(4)) into ws.grad; returns δ = Σ cap·|grad|.

    ``grad = g1/caps + 2α(π_head − π_tail)``. mode="clip": endpoint
    indices are in-bounds by construction, so take can skip its
    per-element bounds check.
    """
    approximator.apply_transpose(ws.g2, out=ws.pi)
    np.take(ws.pi, heads, out=ws.grad, mode="clip")
    np.take(ws.pi, tails, out=ws.step, mode="clip")
    np.subtract(ws.grad, ws.step, out=ws.grad)
    np.multiply(ws.grad, two_alpha, out=ws.grad)
    np.divide(ws.g1, caps, out=ws.step)
    np.add(ws.step, ws.grad, out=ws.grad)
    np.abs(ws.grad, out=ws.step)
    np.multiply(ws.step, caps, out=ws.step)
    return float(ws.step.sum())


def _sign_step(ws: RouteWorkspace, caps: np.ndarray, scale: float) -> None:
    """Fill ws.step with the movement ``sign(grad)·cap·scale``."""
    np.sign(ws.grad, out=ws.step)
    np.multiply(ws.step, caps, out=ws.step)
    np.multiply(ws.step, scale, out=ws.step)


@dataclass
class AlmostRouteResult:
    """Outcome of one AlmostRoute call.

    Attributes:
        flow: Flow for the *original* (unscaled) demand.
        residual: Remaining demand ``b + B f`` (original scale).
        iterations: Gradient steps taken.
        scalings: 17/16 re-scalings performed.
        potential: Final potential value (scaled problem).
        delta: Final gradient norm δ.
        converged: Whether δ < ε/4 was reached within the budget.
    """

    flow: np.ndarray
    residual: np.ndarray
    iterations: int
    scalings: int
    potential: float
    delta: float
    converged: bool


def almost_route(
    graph: Graph,
    approximator: TreeCongestionApproximator,
    demand: np.ndarray,
    epsilon: float,
    max_iterations: int | None = None,
    raise_on_budget: bool = False,
    workspace: RouteWorkspace | None = None,
    parallel: ParallelConfig | None = None,
) -> AlmostRouteResult:
    """Run Algorithm 2.

    Args:
        graph: The capacitated graph.
        approximator: The congestion approximator R (with its α).
        demand: Demand vector b (must sum to zero).
        epsilon: Target accuracy ε of the potential minimization.
        max_iterations: Gradient-step budget; defaults to the theory's
            O(α² ε⁻³ log n) shape with a pragmatic constant.
        raise_on_budget: If True, raise :class:`ConvergenceError` when
            the budget is exhausted; otherwise return the best iterate
            with ``converged=False``.
        workspace: Optional preallocated :class:`RouteWorkspace` to
            reuse across calls on the same (graph, approximator) pair;
            built internally when omitted or mis-sized.
        parallel: Optional sharded-execution config for the R products
            (overrides the approximator's own; results are
            bit-identical either way).

    Returns:
        An :class:`AlmostRouteResult`. ``flow`` is *not* necessarily
        feasible (soft capacity constraint); Algorithm 1 rescales.
    """
    if parallel is not None:
        approximator = approximator.with_parallel(parallel)
    demand = check_demand(graph, demand)
    n = graph.num_nodes
    m = graph.num_edges
    alpha = max(1.0, float(approximator.alpha))
    eps = float(epsilon)
    if not 0 < eps <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    ln_n = math.log(max(n, 3))
    target = TARGET_FACTOR * ln_n / eps
    if max_iterations is None:
        max_iterations = int(
            min(300_000, 200 + 40 * alpha**2 * ln_n / eps**3)
        )

    caps = graph.capacities()
    tails, heads = graph.edge_index_arrays()

    norm_rb = approximator.estimate(demand)
    if norm_rb <= 0:
        return AlmostRouteResult(
            flow=np.zeros(m),
            residual=demand.copy(),
            iterations=0,
            scalings=0,
            potential=0.0,
            delta=0.0,
            converged=True,
        )
    ws = RouteWorkspace.ensure(workspace, graph, approximator)
    two_alpha = 2.0 * alpha
    # Line 1: scale so that 2α‖Rb‖∞ = target.
    kb = two_alpha * norm_rb / target
    b = demand / kb
    f = ws.flow
    f[:] = 0.0
    kf = 1.0
    scalings = 0
    iterations = 0
    potential = 0.0
    delta = float("inf")
    converged = False

    while iterations < max_iterations:
        potential = _evaluate(ws, graph, approximator, caps, two_alpha, b, f)
        # Lines 4–5: keep the soft-max sharp (linearity: only the
        # cached soft-max arguments are rescaled; see _rescale_cached).
        inner_guard = 0
        while potential < target and inner_guard < MAX_SCALINGS_PER_STEP:
            np.multiply(f, SCALE_STEP, out=f)
            np.multiply(b, SCALE_STEP, out=b)
            kf *= SCALE_STEP
            scalings += 1
            inner_guard += 1
            potential = _rescale_cached(ws)
        delta = _gradient_delta(ws, approximator, caps, tails, heads, two_alpha)
        if delta < eps / 4.0:
            converged = True
            break
        _sign_step(ws, caps, delta / (1.0 + 4.0 * alpha**2))
        np.subtract(f, ws.step, out=f)
        iterations += 1

    if not converged and raise_on_budget:
        raise ConvergenceError(
            f"AlmostRoute did not converge in {max_iterations} iterations "
            f"(delta={delta:.3g}, target {eps / 4:.3g})"
        )
    unscale = kb / kf
    flow_out = f * unscale
    residual_out = demand + graph.excess(flow_out)
    return AlmostRouteResult(
        flow=flow_out,
        residual=residual_out,
        iterations=iterations,
        scalings=scalings,
        potential=potential,
        delta=delta,
        converged=converged,
    )
