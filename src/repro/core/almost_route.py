"""Algorithm 2 — AlmostRoute, Sherman's scaled gradient descent (§9.1).

Minimizes the potential

    φ(f) = smax(C⁻¹ f) + smax(2α · R · r(f)),   r(f) = b + B f,

where ``r(f)`` is the *residual demand* (the library's convention: a
flow routes b when the net outflow of every node equals b_v, i.e.
``b + Bf = 0`` with ``Bf`` the net-inflow operator).

The demand is pre-scaled so φ starts at Θ(ε⁻¹ log n) and is re-scaled
by 17/16 whenever the potential drops below that sharpness threshold
(Algorithm 2 lines 4–5); each iteration moves every edge by
``cap(e) · δ / (1 + 4α²)`` against the gradient sign, where
``δ = Σ_e cap(e) · |∂φ/∂f_e|``; termination once δ < ε/4.

Gradient structure (paper Eqs. (3)–(4)): the φ₂ part needs one R
product (for y) and one Rᵀ product (for the node potentials π); then
``∂φ₂/∂f_e = 2α (π_head − π_tail)``. Distributedly these are the
convergecast/downcast of Corollary 9.3; here they are the Euler-tour
operators of :class:`~repro.core.approximator.TreeOperator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.approximator import TreeCongestionApproximator
from repro.core.softmax import smax_and_gradient
from repro.errors import ConvergenceError
from repro.graphs.graph import Graph
from repro.util.validation import check_demand

__all__ = ["AlmostRouteResult", "almost_route"]

#: Scale-up factor of Algorithm 2 line 5.
SCALE_STEP = 17.0 / 16.0
#: Sharpness target multiplier: φ is kept at >= TARGET_FACTOR·ln(n)/ε.
TARGET_FACTOR = 16.0


@dataclass
class AlmostRouteResult:
    """Outcome of one AlmostRoute call.

    Attributes:
        flow: Flow for the *original* (unscaled) demand.
        residual: Remaining demand ``b + B f`` (original scale).
        iterations: Gradient steps taken.
        scalings: 17/16 re-scalings performed.
        potential: Final potential value (scaled problem).
        delta: Final gradient norm δ.
        converged: Whether δ < ε/4 was reached within the budget.
    """

    flow: np.ndarray
    residual: np.ndarray
    iterations: int
    scalings: int
    potential: float
    delta: float
    converged: bool


def almost_route(
    graph: Graph,
    approximator: TreeCongestionApproximator,
    demand: np.ndarray,
    epsilon: float,
    max_iterations: int | None = None,
    raise_on_budget: bool = False,
) -> AlmostRouteResult:
    """Run Algorithm 2.

    Args:
        graph: The capacitated graph.
        approximator: The congestion approximator R (with its α).
        demand: Demand vector b (must sum to zero).
        epsilon: Target accuracy ε of the potential minimization.
        max_iterations: Gradient-step budget; defaults to the theory's
            O(α² ε⁻³ log n) shape with a pragmatic constant.
        raise_on_budget: If True, raise :class:`ConvergenceError` when
            the budget is exhausted; otherwise return the best iterate
            with ``converged=False``.

    Returns:
        An :class:`AlmostRouteResult`. ``flow`` is *not* necessarily
        feasible (soft capacity constraint); Algorithm 1 rescales.
    """
    demand = check_demand(graph, demand)
    n = graph.num_nodes
    m = graph.num_edges
    alpha = max(1.0, float(approximator.alpha))
    eps = float(epsilon)
    if not 0 < eps <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    ln_n = math.log(max(n, 3))
    target = TARGET_FACTOR * ln_n / eps
    if max_iterations is None:
        max_iterations = int(
            min(300_000, 200 + 40 * alpha**2 * ln_n / eps**3)
        )

    caps = graph.capacities()
    tails, heads = graph.edge_index_arrays()

    norm_rb = approximator.estimate(demand)
    if norm_rb <= 0:
        return AlmostRouteResult(
            flow=np.zeros(m),
            residual=demand.copy(),
            iterations=0,
            scalings=0,
            potential=0.0,
            delta=0.0,
            converged=True,
        )
    # Line 1: scale so that 2α‖Rb‖∞ = target.
    kb = 2.0 * alpha * norm_rb / target
    b = demand / kb
    f = np.zeros(m)
    kf = 1.0
    scalings = 0
    iterations = 0
    potential = 0.0
    delta = float("inf")
    converged = False

    def evaluate(flow: np.ndarray, b_now: np.ndarray):
        residual = b_now + graph.excess(flow)
        phi1, g1 = smax_and_gradient(flow / caps)
        y = 2.0 * alpha * approximator.apply(residual)
        phi2, g2 = smax_and_gradient(y)
        return residual, phi1 + phi2, g1, g2

    while iterations < max_iterations:
        residual, potential, g1, g2 = evaluate(f, b)
        # Lines 4–5: keep the soft-max sharp.
        inner_guard = 0
        while potential < target and inner_guard < 4096:
            f *= SCALE_STEP
            b *= SCALE_STEP
            kf *= SCALE_STEP
            scalings += 1
            inner_guard += 1
            residual, potential, g1, g2 = evaluate(f, b)
        # Gradient (Eqs. (3)–(4)).
        pi = approximator.apply_transpose(g2)
        grad = g1 / caps + 2.0 * alpha * (pi[heads] - pi[tails])
        delta = float(np.sum(caps * np.abs(grad)))
        if delta < eps / 4.0:
            converged = True
            break
        f = f - np.sign(grad) * caps * (delta / (1.0 + 4.0 * alpha**2))
        iterations += 1

    if not converged and raise_on_budget:
        raise ConvergenceError(
            f"AlmostRoute did not converge in {max_iterations} iterations "
            f"(delta={delta:.3g}, target {eps / 4:.3g})"
        )
    unscale = kb / kf
    flow_out = f * unscale
    residual_out = demand + graph.excess(flow_out)
    return AlmostRouteResult(
        flow=flow_out,
        residual=residual_out,
        iterations=iterations,
        scalings=scalings,
        potential=potential,
        delta=delta,
        converged=converged,
    )
