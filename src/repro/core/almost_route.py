"""Algorithm 2 — AlmostRoute, Sherman's scaled gradient descent (§9.1).

Minimizes the potential

    φ(f) = smax(C⁻¹ f) + smax(2α · R · r(f)),   r(f) = b + B f,

where ``r(f)`` is the *residual demand* (the library's convention: a
flow routes b when the net outflow of every node equals b_v, i.e.
``b + Bf = 0`` with ``Bf`` the net-inflow operator).

The demand is pre-scaled so φ starts at Θ(ε⁻¹ log n) and is re-scaled
by 17/16 whenever the potential drops below that sharpness threshold
(Algorithm 2 lines 4–5); each iteration moves every edge by
``cap(e) · δ / (1 + 4α²)`` against the gradient sign, where
``δ = Σ_e cap(e) · |∂φ/∂f_e|``; termination once δ < ε/4.

Gradient structure (paper Eqs. (3)–(4)): the φ₂ part needs one R
product (for y) and one Rᵀ product (for the node potentials π); then
``∂φ₂/∂f_e = 2α (π_head − π_tail)``. Distributedly these are the
convergecast/downcast of Corollary 9.3; here they are one flat stacked
pass over all virtual trees
(:class:`~repro.core.stacked.StackedTreeOperator`).

The inner loop is **allocation free**: every per-iteration vector
(residual, y, gradients, sign-step) lives in a
:class:`RouteWorkspace` that callers may reuse across AlmostRoute
invocations (the residual rounds of ``min_congestion_flow``, the
binary-search sweep of ``max_flow_binary_search``), and every NumPy
step writes through ``out=``. The 17/16 re-scaling sub-loop exploits
linearity — ``C⁻¹(sf)`` and ``R(b + Bf)`` both scale by ``s`` — so a
scaling step re-evaluates only the two soft-maxes instead of paying a
full residual + R product evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.approximator import TreeCongestionApproximator
from repro.core.softmax import smax_and_gradient, smax_and_gradient_batch
from repro.errors import ConvergenceError, GraphError
from repro.graphs.csr import WIDE_DTYPE
from repro.graphs.graph import Graph
from repro.hotpath import hot_kernel
from repro.parallel.config import ParallelConfig
from repro.util.validation import check_demand, check_demand_batch

__all__ = [
    "AlmostRouteResult",
    "BatchAlmostRouteResult",
    "BatchRouteWorkspace",
    "RouteWorkspace",
    "almost_route",
    "almost_route_batch",
]

#: Scale-up factor of Algorithm 2 line 5.
SCALE_STEP = 17.0 / 16.0
#: Sharpness target multiplier: φ is kept at >= TARGET_FACTOR·ln(n)/ε.
TARGET_FACTOR = 16.0
#: Hard cap on consecutive 17/16 re-scalings per outer iteration.
MAX_SCALINGS_PER_STEP = 4096


class RouteWorkspace:
    """Preallocated buffers for the AlmostRoute inner loop.

    One workspace is sized for one (graph, approximator) pair — m-, n-
    and num_rows-shaped vectors — and is reused across gradient steps
    and across AlmostRoute calls. Build it once per solve sweep
    (``min_congestion_flow`` and ``max_flow_binary_search`` do this
    automatically) and hand it to every call on the same pair.
    """

    def __init__(
        self, graph: Graph, approximator: TreeCongestionApproximator
    ) -> None:
        m = graph.num_edges
        n = graph.num_nodes
        rows = approximator.num_rows
        # Shape-derived only — deliberately epoch-independent. A
        # capacity-only mutation (set_capacity) changes no buffer shape,
        # so pooled workspaces must survive it; the incremental serving
        # policy relies on exactly that.
        self.shape_key = (m, n, rows)
        # m-shaped
        self.flow = np.empty(m)
        self.flow_prev = np.empty(m)
        self.lookahead = np.empty(m)
        self.c1 = np.empty(m)
        self.g1 = np.empty(m)
        self.grad = np.empty(m)
        self.step = np.empty(m)
        # n-shaped
        self.excess = np.empty(n)
        self.residual = np.empty(n)
        self.pi = np.empty(n)
        # row-shaped
        self.y = np.empty(rows)
        self.g2 = np.empty(rows)
        # Soft-max pair scratches (2×-shaped): both exponential halves
        # of smax_and_gradient live in one contiguous buffer so a
        # single np.exp evaluates them (see repro.core.softmax).
        self.m_scratch = np.empty(2 * m)
        self.r_scratch = np.empty(2 * rows)

    @classmethod
    def ensure(
        cls,
        workspace: "RouteWorkspace | None",
        graph: Graph,
        approximator: TreeCongestionApproximator,
    ) -> "RouteWorkspace":
        """Return ``workspace`` if it fits the pair, build one if None.

        A workspace sized for a *different* (graph, approximator) pair
        is an error, not a silent rebuild: the caller handed over
        buffers it expects to keep reusing, and quietly replacing them
        hides the mismatch (e.g. a workspace kept across an
        ``add_edge`` that changed the edge count).

        Raises:
            GraphError: If ``workspace.shape_key`` does not match the
                pair, naming the expected and actual sizes.
        """
        key = (graph.num_edges, graph.num_nodes, approximator.num_rows)
        if workspace is None:
            return cls(graph, approximator)
        if workspace.shape_key != key:
            raise GraphError(
                "workspace shape mismatch: built for (num_edges, "
                f"num_nodes, num_rows)={workspace.shape_key}, but this "
                f"(graph, approximator) pair needs {key}"
            )
        return workspace


class BatchRouteWorkspace:
    """Preallocated ``(Q, ·)`` planes for the batched AlmostRoute loop.

    The multi-query analogue of :class:`RouteWorkspace`: every
    per-iteration vector becomes a C-contiguous plane with one row per
    query, sized for one ``(num_queries, graph, approximator)`` triple.
    Per-query loop state (scale factors, masks, counters) lives here
    too, so a server can reuse one batch workspace across calls with a
    fixed batch size without reallocating anything.
    """

    def __init__(
        self,
        graph: Graph,
        approximator: TreeCongestionApproximator,
        num_queries: int,
    ) -> None:
        m = graph.num_edges
        n = graph.num_nodes
        rows = approximator.num_rows
        q = int(num_queries)
        if q <= 0:
            raise GraphError(f"batch workspace needs Q >= 1, got {num_queries}")
        # Shape-derived only — epoch-independent for the same reason as
        # RouteWorkspace.shape_key (capacity writes must not flush pools).
        self.shape_key = (q, m, n, rows)
        self.num_queries = q
        # (Q, m) planes
        self.flow = np.empty((q, m))
        self.flow_prev = np.empty((q, m))
        self.lookahead = np.empty((q, m))
        self.c1 = np.empty((q, m))
        self.g1 = np.empty((q, m))
        self.grad = np.empty((q, m))
        self.step = np.empty((q, m))
        # (Q, n) planes
        self.excess = np.empty((q, n))
        self.residual = np.empty((q, n))
        self.pi = np.empty((q, n))
        self.b = np.empty((q, n))
        # (Q, rows) planes
        self.y = np.empty((q, rows))
        self.g2 = np.empty((q, rows))
        # Soft-max pair scratch planes (one np.exp per plane per call).
        self.m_scratch = np.empty((q, 2 * m))
        self.r_scratch = np.empty((q, 2 * rows))
        # Per-query loop state
        self.phi1 = np.empty(q)
        self.phi2 = np.empty(q)
        self.potential = np.empty(q)
        self.delta = np.empty(q)
        self.kf = np.empty(q)
        self.kb = np.empty(q)
        self.factor = np.empty(q)
        self.scale = np.empty(q)
        self.live = np.empty(q, dtype=bool)
        self.mask = np.empty(q, dtype=bool)
        self.converged = np.empty(q, dtype=bool)
        self.iterations = np.empty(q, dtype=WIDE_DTYPE)
        self.scalings = np.empty(q, dtype=WIDE_DTYPE)
        self.inner_guard = np.empty(q, dtype=WIDE_DTYPE)

    @classmethod
    def ensure(
        cls,
        workspace: "BatchRouteWorkspace | None",
        graph: Graph,
        approximator: TreeCongestionApproximator,
        num_queries: int,
    ) -> "BatchRouteWorkspace":
        """Return ``workspace`` if it fits, build one if None; raise
        :class:`GraphError` on shape mismatch (same contract as
        :meth:`RouteWorkspace.ensure`)."""
        key = (
            int(num_queries),
            graph.num_edges,
            graph.num_nodes,
            approximator.num_rows,
        )
        if workspace is None:
            return cls(graph, approximator, num_queries)
        if workspace.shape_key != key:
            raise GraphError(
                "batch workspace shape mismatch: built for (num_queries, "
                f"num_edges, num_nodes, num_rows)={workspace.shape_key}, "
                f"but this call needs {key}"
            )
        return workspace


@hot_kernel
def _evaluate(
    ws: RouteWorkspace,
    graph: Graph,
    approximator: TreeCongestionApproximator,
    caps: np.ndarray,
    two_alpha: float,
    b: np.ndarray,
    flow: np.ndarray,
) -> float:
    """Full potential evaluation at ``flow``; fills ws.c1/g1/y/g2.

    Shared verbatim by :func:`almost_route` and
    :func:`~repro.core.accelerated.accelerated_almost_route` so the two
    solvers can never diverge in fold order (the bit-identity contract
    of the flat/per-tree paths rides on these exact sequences).
    """
    graph.excess(flow, out=ws.excess)
    np.add(b, ws.excess, out=ws.residual)
    np.divide(flow, caps, out=ws.c1)
    phi1, _ = smax_and_gradient(ws.c1, out=ws.g1, scratch=ws.m_scratch)
    approximator.apply(ws.residual, out=ws.y)
    np.multiply(ws.y, two_alpha, out=ws.y)
    phi2, _ = smax_and_gradient(ws.y, out=ws.g2, scratch=ws.r_scratch)
    return phi1 + phi2


@hot_kernel
def _rescale_cached(ws: RouteWorkspace) -> float:
    """One 17/16 sharpening step on the cached soft-max arguments.

    Both potential halves are linear in (f, b) — ``C⁻¹(sf)`` and
    ``R(s·(b + Bf))`` scale by s — so a scaling step only rescales the
    cached arguments and re-runs the two soft-maxes: no residual
    recomputation, no R product. Returns the new potential.
    """
    np.multiply(ws.c1, SCALE_STEP, out=ws.c1)
    np.multiply(ws.y, SCALE_STEP, out=ws.y)
    phi1, _ = smax_and_gradient(ws.c1, out=ws.g1, scratch=ws.m_scratch)
    phi2, _ = smax_and_gradient(ws.y, out=ws.g2, scratch=ws.r_scratch)
    return phi1 + phi2


@hot_kernel
def _gradient_delta(
    ws: RouteWorkspace,
    approximator: TreeCongestionApproximator,
    caps: np.ndarray,
    tails: np.ndarray,
    heads: np.ndarray,
    two_alpha: float,
) -> float:
    """Gradient (Eqs. (3)–(4)) into ws.grad; returns δ = Σ cap·|grad|.

    ``grad = g1/caps + 2α(π_head − π_tail)``. mode="clip": endpoint
    indices are in-bounds by construction, so take can skip its
    per-element bounds check.
    """
    approximator.apply_transpose(ws.g2, out=ws.pi)
    np.take(ws.pi, heads, out=ws.grad, mode="clip")
    np.take(ws.pi, tails, out=ws.step, mode="clip")
    np.subtract(ws.grad, ws.step, out=ws.grad)
    np.multiply(ws.grad, two_alpha, out=ws.grad)
    np.divide(ws.g1, caps, out=ws.step)
    np.add(ws.step, ws.grad, out=ws.grad)
    np.abs(ws.grad, out=ws.step)
    np.multiply(ws.step, caps, out=ws.step)
    return float(ws.step.sum())


@hot_kernel
def _sign_step(ws: RouteWorkspace, caps: np.ndarray, scale: float) -> None:
    """Fill ws.step with the movement ``sign(grad)·cap·scale``."""
    np.sign(ws.grad, out=ws.step)
    np.multiply(ws.step, caps, out=ws.step)
    np.multiply(ws.step, scale, out=ws.step)


# ----------------------------------------------------------------------
# Batched (Q, ·) plane forms of the loop helpers. Each mirrors its 1-D
# counterpart operation for operation — same ufuncs, same contiguous
# row reductions — so every row of every intermediate is bit-identical
# to the 1-D helper run on that query alone. Shared with
# repro.core.accelerated so the two batched solvers cannot diverge.
# ----------------------------------------------------------------------
@hot_kernel
def _evaluate_batch(
    ws: BatchRouteWorkspace,
    graph: Graph,
    approximator: TreeCongestionApproximator,
    caps: np.ndarray,
    two_alpha: float,
    b: np.ndarray,
    flow: np.ndarray,
) -> np.ndarray:
    """Potential of every query at ``flow``; fills ws.c1/g1/y/g2 planes.
    Returns the per-query potential (a view of ``ws.potential``)."""
    graph.excess_batch(flow, out=ws.excess)
    np.add(b, ws.excess, out=ws.residual)
    np.divide(flow, caps, out=ws.c1)
    smax_and_gradient_batch(
        ws.c1, out=ws.g1, scratch=ws.m_scratch, values_out=ws.phi1
    )
    approximator.apply_batch(ws.residual, out=ws.y)
    np.multiply(ws.y, two_alpha, out=ws.y)
    smax_and_gradient_batch(
        ws.y, out=ws.g2, scratch=ws.r_scratch, values_out=ws.phi2
    )
    np.add(ws.phi1, ws.phi2, out=ws.potential)
    return ws.potential


@hot_kernel
def _rescale_masked(ws: BatchRouteWorkspace, mask: np.ndarray) -> np.ndarray:
    """One 17/16 sharpening step on the masked queries' cached soft-max
    arguments (rows outside ``mask`` multiply by exactly 1.0, which is
    bit-exact identity), then re-run both soft-maxes on the full
    planes — unchanged rows recompute to identical bits. Returns the
    updated per-query potential."""
    ws.factor[:] = 1.0
    ws.factor[mask] = SCALE_STEP
    np.multiply(ws.c1, ws.factor[:, None], out=ws.c1)
    np.multiply(ws.y, ws.factor[:, None], out=ws.y)
    smax_and_gradient_batch(
        ws.c1, out=ws.g1, scratch=ws.m_scratch, values_out=ws.phi1
    )
    smax_and_gradient_batch(
        ws.y, out=ws.g2, scratch=ws.r_scratch, values_out=ws.phi2
    )
    np.add(ws.phi1, ws.phi2, out=ws.potential)
    return ws.potential


@hot_kernel
def _gradient_delta_batch(
    ws: BatchRouteWorkspace,
    approximator: TreeCongestionApproximator,
    caps: np.ndarray,
    tails: np.ndarray,
    heads: np.ndarray,
    two_alpha: float,
) -> np.ndarray:
    """Per-query gradient into ws.grad; returns δ_q = Σ_e cap·|grad_q|
    (a view of ``ws.delta``)."""
    approximator.apply_transpose_batch(ws.g2, out=ws.pi)
    np.take(ws.pi, heads, axis=1, out=ws.grad, mode="clip")
    np.take(ws.pi, tails, axis=1, out=ws.step, mode="clip")
    np.subtract(ws.grad, ws.step, out=ws.grad)
    np.multiply(ws.grad, two_alpha, out=ws.grad)
    np.divide(ws.g1, caps, out=ws.step)
    np.add(ws.step, ws.grad, out=ws.grad)
    np.abs(ws.grad, out=ws.step)
    np.multiply(ws.step, caps, out=ws.step)
    np.sum(ws.step, axis=1, out=ws.delta)
    return ws.delta


@hot_kernel
def _sign_step_batch(
    ws: BatchRouteWorkspace, caps: np.ndarray, denom: float
) -> None:
    """Fill ws.step with ``sign(grad)·cap·(δ_q/denom)`` per live query
    and exactly ``0.0`` on frozen rows (``f -= 0.0`` is a bit-exact
    no-op, which is what freezes converged columns)."""
    np.sign(ws.grad, out=ws.step)
    np.multiply(ws.step, caps, out=ws.step)
    np.divide(ws.delta, denom, out=ws.scale)
    np.multiply(ws.step, ws.scale[:, None], out=ws.step)
    ws.step[~ws.live] = 0.0


@dataclass
class AlmostRouteResult:
    """Outcome of one AlmostRoute call.

    Attributes:
        flow: Flow for the *original* (unscaled) demand.
        residual: Remaining demand ``b + B f`` (original scale).
        iterations: Gradient steps taken.
        scalings: 17/16 re-scalings performed.
        potential: Final potential value (scaled problem).
        delta: Final gradient norm δ.
        converged: Whether δ < ε/4 was reached within the budget.
    """

    flow: np.ndarray
    residual: np.ndarray
    iterations: int
    scalings: int
    potential: float
    delta: float
    converged: bool


def almost_route(
    graph: Graph,
    approximator: TreeCongestionApproximator,
    demand: np.ndarray,
    epsilon: float,
    max_iterations: int | None = None,
    raise_on_budget: bool = False,
    workspace: RouteWorkspace | None = None,
    parallel: ParallelConfig | None = None,
    initial_flow: np.ndarray | None = None,
) -> AlmostRouteResult:
    """Run Algorithm 2.

    Args:
        graph: The capacitated graph.
        approximator: The congestion approximator R (with its α).
        demand: Demand vector b (must sum to zero).
        epsilon: Target accuracy ε of the potential minimization.
        max_iterations: Gradient-step budget; defaults to the theory's
            O(α² ε⁻³ log n) shape with a pragmatic constant.
        raise_on_budget: If True, raise :class:`ConvergenceError` when
            the budget is exhausted; otherwise return the best iterate
            with ``converged=False``.
        workspace: Optional preallocated :class:`RouteWorkspace` to
            reuse across calls on the same (graph, approximator) pair;
            built internally when omitted; a workspace sized for a
            different (graph, approximator) pair raises
            :class:`~repro.errors.GraphError`.
        parallel: Optional sharded-execution config for the R products
            (overrides the approximator's own; results are
            bit-identical either way).
        initial_flow: Optional warm-start seed in *original* (unscaled)
            units — typically a previous epoch's flow for the same
            demand, rescaled to the current capacities via
            :func:`repro.graphs.journal.rescale_flow`. The descent
            starts from this point instead of zero; every exit bound
            (the δ < ε/4 certificate and the soft capacity potential)
            is checked on the iterate itself, so the result satisfies
            exactly the guarantees of a cold start — a good seed only
            shortens the path there.

    Returns:
        An :class:`AlmostRouteResult`. ``flow`` is *not* necessarily
        feasible (soft capacity constraint); Algorithm 1 rescales.
    """
    if parallel is not None:
        approximator = approximator.with_parallel(parallel)
    demand = check_demand(graph, demand)
    n = graph.num_nodes
    m = graph.num_edges
    alpha = max(1.0, float(approximator.alpha))
    eps = float(epsilon)
    if not 0 < eps <= 1:
        raise GraphError(f"epsilon must be in (0, 1], got {epsilon}")
    ln_n = math.log(max(n, 3))
    target = TARGET_FACTOR * ln_n / eps
    if max_iterations is None:
        max_iterations = int(
            min(300_000, 200 + 40 * alpha**2 * ln_n / eps**3)
        )

    caps = graph.capacities()
    tails, heads = graph.edge_index_arrays()

    norm_rb = approximator.estimate(demand)
    if norm_rb <= 0:
        return AlmostRouteResult(
            flow=np.zeros(m),
            residual=demand.copy(),
            iterations=0,
            scalings=0,
            potential=0.0,
            delta=0.0,
            converged=True,
        )
    ws = RouteWorkspace.ensure(workspace, graph, approximator)
    two_alpha = 2.0 * alpha
    # Line 1: scale so that 2α‖Rb‖∞ = target.
    kb = two_alpha * norm_rb / target
    b = demand / kb
    f = ws.flow
    if initial_flow is None:
        f[:] = 0.0
    else:
        seed = np.asarray(initial_flow, dtype=float)
        if seed.shape != (m,):
            raise GraphError(
                f"initial_flow has shape {seed.shape}, expected ({m},)"
            )
        np.divide(seed, kb, out=f)
    kf = 1.0
    scalings = 0
    iterations = 0
    potential = 0.0
    delta = float("inf")
    converged = False

    while iterations < max_iterations:
        potential = _evaluate(ws, graph, approximator, caps, two_alpha, b, f)
        # Lines 4–5: keep the soft-max sharp (linearity: only the
        # cached soft-max arguments are rescaled; see _rescale_cached).
        inner_guard = 0
        while potential < target and inner_guard < MAX_SCALINGS_PER_STEP:
            np.multiply(f, SCALE_STEP, out=f)
            np.multiply(b, SCALE_STEP, out=b)
            kf *= SCALE_STEP
            scalings += 1
            inner_guard += 1
            potential = _rescale_cached(ws)
        delta = _gradient_delta(ws, approximator, caps, tails, heads, two_alpha)
        if delta < eps / 4.0:
            converged = True
            break
        _sign_step(ws, caps, delta / (1.0 + 4.0 * alpha**2))
        np.subtract(f, ws.step, out=f)
        iterations += 1

    if not converged and raise_on_budget:
        raise ConvergenceError(
            f"AlmostRoute did not converge in {max_iterations} iterations "
            f"(delta={delta:.3g}, target {eps / 4:.3g})"
        )
    unscale = kb / kf
    flow_out = f * unscale
    residual_out = demand + graph.excess(flow_out)
    return AlmostRouteResult(
        flow=flow_out,
        residual=residual_out,
        iterations=iterations,
        scalings=scalings,
        potential=potential,
        delta=delta,
        converged=converged,
    )


@dataclass
class BatchAlmostRouteResult:
    """Outcome of one batched AlmostRoute call over ``Q`` demands.

    Every per-query column is **bit-identical** to the
    :class:`AlmostRouteResult` of the corresponding one-shot
    :func:`almost_route` call on the same (graph, approximator, ε)
    (golden-tested in ``tests/test_batch_route.py``).

    Attributes:
        flows: ``(Q, m)`` flows for the original (unscaled) demands.
        residuals: ``(Q, n)`` remaining demands ``b_q + B f_q``.
        iterations: ``(Q,)`` gradient steps per query.
        scalings: ``(Q,)`` 17/16 re-scalings per query.
        potentials: ``(Q,)`` final potential values (scaled problem).
        deltas: ``(Q,)`` final gradient norms δ.
        converged: ``(Q,)`` whether δ < ε/4 was reached per query.
    """

    flows: np.ndarray
    residuals: np.ndarray
    iterations: np.ndarray
    scalings: np.ndarray
    potentials: np.ndarray
    deltas: np.ndarray
    converged: np.ndarray

    @property
    def num_queries(self) -> int:
        return self.flows.shape[0]

    def query(self, q: int) -> AlmostRouteResult:
        """Extract query ``q`` as an independent one-shot result
        (arrays are copied, so the extracted result outlives any reuse
        of the batch buffers — what the serving result cache stores)."""
        return AlmostRouteResult(
            flow=self.flows[q].copy(),
            residual=self.residuals[q].copy(),
            iterations=int(self.iterations[q]),
            scalings=int(self.scalings[q]),
            potential=float(self.potentials[q]),
            delta=float(self.deltas[q]),
            converged=bool(self.converged[q]),
        )


def almost_route_batch(
    graph: Graph,
    approximator: TreeCongestionApproximator,
    demands: np.ndarray,
    epsilon: float,
    max_iterations: int | None = None,
    raise_on_budget: bool = False,
    workspace: BatchRouteWorkspace | None = None,
    parallel: ParallelConfig | None = None,
    initial_flows: np.ndarray | None = None,
) -> BatchAlmostRouteResult:
    """Run Algorithm 2 on ``Q`` stacked demands at once.

    The soft-max/gradient loop runs over ``(Q, ·)`` planes: one
    excess/R/Rᵀ product batch and one fused soft-max plane per
    iteration serve every query, amortizing each ufunc dispatch and
    every gather/cumsum/scatter across the batch. Per-query step sizes
    and the 17/16 re-scaling sub-loop are **masked** iteration: a
    converged column freezes (its step is exactly ``0.0`` and its
    re-scale factor exactly ``1.0`` — both bit-exact identities) while
    live columns keep stepping, so each column replays precisely the
    arithmetic of its one-shot :func:`almost_route` call and the
    results are bit-identical per query.

    Args:
        graph: The capacitated graph.
        approximator: The congestion approximator R (with its α).
        demands: ``(Q, n)`` plane of demand vectors (each sums to zero).
        epsilon: Target accuracy ε (shared by the batch).
        max_iterations: Per-query gradient-step budget (shared).
        raise_on_budget: If True, raise :class:`ConvergenceError` when
            any query exhausts the budget.
        workspace: Optional :class:`BatchRouteWorkspace` sized for
            ``(Q, graph, approximator)``; mismatched shapes raise
            :class:`~repro.errors.GraphError`.
        parallel: Optional sharded-execution config for the batched R
            products (results are bit-identical either way).
        initial_flows: Optional ``(Q, m)`` plane of warm-start seeds in
            original units (see :func:`almost_route`'s ``initial_flow``;
            per-column bit-identity with the one-shot warm start is
            preserved — the seed scaling is a single per-row division
            by the same ``kb``).

    Returns:
        A :class:`BatchAlmostRouteResult` with one column per query.
    """
    if parallel is not None:
        approximator = approximator.with_parallel(parallel)
    demands = check_demand_batch(graph, demands)
    num_queries = demands.shape[0]
    n = graph.num_nodes
    m = graph.num_edges
    if num_queries == 0:
        zero = np.zeros(0)
        return BatchAlmostRouteResult(
            flows=np.zeros((0, m)),
            residuals=np.zeros((0, n)),
            iterations=np.zeros(0, dtype=WIDE_DTYPE),
            scalings=np.zeros(0, dtype=WIDE_DTYPE),
            potentials=zero,
            deltas=zero.copy(),
            converged=np.zeros(0, dtype=bool),
        )
    alpha = max(1.0, float(approximator.alpha))
    eps = float(epsilon)
    if not 0 < eps <= 1:
        raise GraphError(f"epsilon must be in (0, 1], got {epsilon}")
    ln_n = math.log(max(n, 3))
    target = TARGET_FACTOR * ln_n / eps
    if max_iterations is None:
        max_iterations = int(
            min(300_000, 200 + 40 * alpha**2 * ln_n / eps**3)
        )

    caps = graph.capacities()
    tails, heads = graph.edge_index_arrays()
    ws = BatchRouteWorkspace.ensure(workspace, graph, approximator, num_queries)

    two_alpha = 2.0 * alpha
    norm_rb = approximator.estimate_batch(demands)
    active = norm_rb > 0
    # Line 1 per query: scale so that 2α‖Rb_q‖∞ = target. Inactive
    # (zero-demand) queries never enter the loop; their b rows are
    # zeroed so the shared plane passes stay finite.
    np.multiply(norm_rb, two_alpha, out=ws.kb)
    np.divide(ws.kb, target, out=ws.kb)
    safe_kb = np.where(active, ws.kb, 1.0)
    np.divide(demands, safe_kb[:, None], out=ws.b)
    ws.b[~active] = 0.0
    b = ws.b
    f = ws.flow
    if initial_flows is None:
        f[:] = 0.0
    else:
        seeds = np.asarray(initial_flows, dtype=float)
        if seeds.shape != (num_queries, m):
            raise GraphError(
                f"initial_flows has shape {seeds.shape}, expected "
                f"({num_queries}, {m})"
            )
        np.divide(seeds, safe_kb[:, None], out=f)
        f[~active] = 0.0
    ws.kf[:] = 1.0
    ws.scalings[:] = 0
    ws.iterations[:] = 0
    ws.potential[:] = 0.0
    ws.delta[:] = 0.0
    live = ws.live
    live[:] = active
    ws.converged[:] = ~active  # zero-norm queries count as converged
    potential_out = np.zeros(num_queries)
    delta_out = np.full(num_queries, float("inf"))
    delta_out[~active] = 0.0
    it = 0

    while live.any() and it < max_iterations:
        potential = _evaluate_batch(
            ws, graph, approximator, caps, two_alpha, b, f
        )
        # Lines 4–5: keep every live query's soft-max sharp. Masked
        # rows rescale by 17/16; everyone else multiplies by exactly
        # 1.0 (bit-exact identity), and the full-plane soft-max
        # recompute reproduces unchanged rows to identical bits.
        ws.inner_guard[:] = 0
        while True:
            np.less(potential, target, out=ws.mask)
            ws.mask &= live
            ws.mask &= ws.inner_guard < MAX_SCALINGS_PER_STEP
            if not ws.mask.any():
                break
            ws.factor[:] = 1.0
            ws.factor[ws.mask] = SCALE_STEP
            np.multiply(f, ws.factor[:, None], out=f)
            np.multiply(b, ws.factor[:, None], out=b)
            ws.kf[ws.mask] *= SCALE_STEP
            ws.scalings[ws.mask] += 1
            ws.inner_guard[ws.mask] += 1
            potential = _rescale_masked(ws, ws.mask)
        potential_out[live] = potential[live]
        delta = _gradient_delta_batch(
            ws, approximator, caps, tails, heads, two_alpha
        )
        delta_out[live] = delta[live]
        np.less(delta, eps / 4.0, out=ws.mask)
        ws.mask &= live
        if ws.mask.any():
            ws.iterations[ws.mask] = it
            ws.converged[ws.mask] = True
            live &= ~ws.mask
            if not live.any():
                break
        _sign_step_batch(ws, caps, 1.0 + 4.0 * alpha**2)
        np.subtract(f, ws.step, out=f)
        it += 1

    ws.iterations[live] = it
    if raise_on_budget and live.any():
        raise ConvergenceError(
            f"AlmostRoute batch: {int(live.sum())} of {num_queries} "
            f"queries did not converge in {max_iterations} iterations"
        )

    unscale = np.divide(ws.kb, ws.kf)
    flows = f * unscale[:, None]
    residuals = demands + graph.excess_batch(flows)
    # Inactive queries return their demand untouched (matches the
    # one-shot zero-norm early return bit for bit, -0.0 included).
    flows[~active] = 0.0
    residuals[~active] = demands[~active]
    return BatchAlmostRouteResult(
        flows=flows,
        residuals=residuals,
        iterations=ws.iterations.copy(),
        scalings=ws.scalings.copy(),
        potentials=potential_out,
        deltas=delta_out,
        converged=ws.converged.copy(),
    )
