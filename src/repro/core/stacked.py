"""Flat stacked congestion-approximator operator (one pass per product).

The per-tree :class:`~repro.core.approximator.TreeOperator`s compute
``R·b`` / ``Rᵀ·g`` one O(n) block at a time — a Python loop over the
O(log n) virtual trees, a ``np.concatenate`` per ``apply``, per-call
index slicing, and two ``ufunc.at`` scatters per ``apply_transpose``.
Since every AlmostRoute gradient step performs both products, that
per-tree dispatch overhead is the end-to-end hot path (measured: the
fused pass below wins ~3×/~2× at n=256/1024 — see
``BENCH_graphcore.json``; the residual floor is the sequential
segmented cumsum plus the scatter, which both paths share). This module fuses the blocks into **one**
stacked operator built once at approximator-construction time, the same
"batch all per-round work into a single synchronous pass" discipline the
hierarchy sampler adopted in PR 2.

Stacked-segment layout
======================

All ``T`` virtual trees span the same ``n`` graph nodes, so every
per-tree array is a fixed-width segment and the stack is a dense plane:

* ``_order`` — ``(T·n,)`` concatenated DFS preorders; entries are node
  ids (< n), i.e. gather indices into the demand vector.
* prefix plane — the gathered demand reshaped ``(T, n)`` and turned
  into inclusive prefix sums by one in-place ``np.cumsum(axis=1)``
  (row-wise cumsum is the *same* sequential left-fold as the per-tree
  1-D cumsum, which is what makes the paths bit-identical). Row nodes
  are never the root, so ``tin ≥ 1`` and the per-tree *exclusive*
  prefix ``P[k]`` is exactly the inclusive ``Q[k−1]`` — no zero column
  needed.
* ``_tin_rows`` / ``_tout_rows`` — flattened indices ``t·n + tin − 1``
  / ``t·n + tout − 1`` of the non-root row nodes, concatenated in tree
  order; ``R·b`` is then two fancy-index lookups into the prefix plane
  plus one multiply by the precomputed ``_row_inv_capacity``.
* scatter plan — the Euler range-update targets of ``Rᵀ·g`` (``+w`` at
  ``tin``, ``−w`` at ``tout``, *unshifted*) are a *fixed* index
  multiset ``concat(t·(n+1)+tin, t·(n+1)+tout)`` into a ``(T, n+1)``
  diff plane, materialized per call by **one**
  ``np.bincount`` over the signed weights (``+w`` then ``-w``).
  ``bincount`` accumulates strictly in input order — the same
  sequential fold as the legacy ``np.add.at``/``np.subtract.at`` pair
  (adds before subtracts, ascending row order within each), so results
  are bit-identical without ``ufunc.at``'s per-element dispatch cost.
  (``np.add.reduceat`` would be allocation free but sums segments
  pairwise, which breaks the bit-identity contract.)
* ``_pot_rows`` — ``(T·n,)`` flattened indices ``t·n + tin`` (all
  nodes) into the row-wise cumsum of the diff plane; the per-tree node
  potentials are gathered in one take and accumulated tree by tree
  (``0 + x == x`` exactly, so the accumulation matches the per-tree
  ``out += block`` loop bit for bit).

Segments sharing one global cumsum would leak floating-point carry
across tree boundaries; the ``(T, ·)`` plane resets every row for free.

All scratch planes are preallocated on the operator, and ``apply`` /
``apply_transpose`` accept ``out=`` — with a caller-provided output
``apply`` allocates nothing and ``apply_transpose``'s only per-call
allocation is ``bincount``'s diff-plane output (the price of the exact
fold), which is what the AlmostRoute workspace
(:class:`~repro.core.almost_route.RouteWorkspace`) relies on.

Sharded execution
=================

The ``(T, ·)`` planes are row-independent, so multi-worker ``R·b`` /
``Rᵀ·g`` is a data partition of tree rows, not a rewrite: a
:class:`~repro.parallel.plan.ShardPlan` splits the trees into
contiguous blocks balanced by row count, each worker runs the *same*
gather / row-cumsum / scatter sequence on its block (every index array
rebased once per shard count and cached), and the coordinating thread
writes ``apply`` shard outputs into their row slices and folds
``apply_transpose`` per-tree potentials in global tree order — the
exact serial ``out += pots[t]`` fold, so both products stay
bit-identical at every shard count (swept by
``tests/test_parallel_backend.py``). Dispatch is adaptive: serial
below the config's ``min_size`` plane-cell threshold, sharded above,
selected by the approximator's :class:`~repro.parallel.config.
ParallelConfig` (or the ``REPRO_WORKERS`` process default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import WIDE_DTYPE
from repro.hotpath import hot_kernel
from repro.parallel.arena import tag_array_version
from repro.parallel.config import ParallelConfig, resolve_config
from repro.parallel.plan import ShardPlan
from repro.parallel.pool import get_pool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.approximator import TreeOperator

__all__ = ["StackedTreeOperator"]


@dataclass
class _StackedShard:
    """One contiguous tree block's rebased index arrays and scratch.

    All indices are rebased to the shard's own ``(trees, n)`` /
    ``(trees, n + 1)`` subplanes so workers never index outside their
    block; built once per shard count and cached on the operator. The
    scratch planes are owned by exactly one task per product call, so
    in-process pools (serial / thread) run allocation-free except for
    ``bincount``'s diff plane; the process pool ignores them (workers
    allocate locally and ship results back).
    """

    t0: int
    t1: int
    r0: int
    r1: int
    trees: int
    order: np.ndarray
    tin_rows: np.ndarray
    tout_rows: np.ndarray
    inv_capacity: np.ndarray
    scatter_idx: np.ndarray
    pot_rows: np.ndarray
    prefix: np.ndarray
    row_scratch: np.ndarray
    signed: np.ndarray
    cum: np.ndarray
    pots: np.ndarray


@hot_kernel
def _apply_shard(
    order: np.ndarray,
    tin_rows: np.ndarray,
    tout_rows: np.ndarray,
    inv_capacity: np.ndarray,
    demand: np.ndarray,
    trees: int,
    n: int,
    prefix: np.ndarray | None = None,
    row_scratch: np.ndarray | None = None,
    target: np.ndarray | None = None,
) -> np.ndarray:
    """One tree block of ``R·b`` — the serial sequence on a subplane.

    With the shard's cached buffers and a ``target`` view into the
    caller's output the call is allocation free (in-process pools);
    without them (process pool) it allocates and returns fresh arrays.
    """
    if prefix is None:
        prefix = np.empty((trees, n))  # alloc-ok (process-pool shard fallback)
    if row_scratch is None:
        row_scratch = np.empty(len(tin_rows))  # alloc-ok (process-pool shard fallback)
    if target is None:
        target = np.empty(len(tin_rows))  # alloc-ok (process-pool shard fallback)
    flat = prefix.reshape(-1)
    np.take(demand, order, out=flat, mode="clip")
    np.cumsum(prefix, axis=1, out=prefix)
    np.take(flat, tout_rows, out=target, mode="clip")
    np.take(flat, tin_rows, out=row_scratch, mode="clip")
    np.subtract(target, row_scratch, out=target)
    np.multiply(target, inv_capacity, out=target)
    return target


@hot_kernel
def _apply_shard_batch(
    order: np.ndarray,
    tin_rows: np.ndarray,
    tout_rows: np.ndarray,
    inv_capacity: np.ndarray,
    demand_plane: np.ndarray,
    trees: int,
    n: int,
) -> np.ndarray:
    """One tree block of ``R·b`` for ``Q`` stacked demands.

    Runs the exact serial gather / row-cumsum / lookup sequence on a
    ``(Q, trees, n)`` prefix volume — every per-(q, tree) row folds
    exactly as the 1-D shard folds its ``(trees, n)`` plane, so column
    ``q`` of the returned ``(Q, rows)`` block is bit-identical to
    ``_apply_shard`` on ``demand_plane[q]``.
    """
    num_queries = demand_plane.shape[0]
    prefix = np.empty((num_queries, trees * n))  # alloc-ok (per-call plane, pooled upstream)
    np.take(demand_plane, order, axis=1, out=prefix, mode="clip")
    np.cumsum(prefix.reshape(num_queries, trees, n), axis=2, out=prefix.reshape(num_queries, trees, n))
    target = np.empty((num_queries, len(tin_rows)))  # alloc-ok (per-call plane, pooled upstream)
    scratch = np.empty_like(target)  # alloc-ok (per-call plane, pooled upstream)
    np.take(prefix, tout_rows, axis=1, out=target, mode="clip")
    np.take(prefix, tin_rows, axis=1, out=scratch, mode="clip")
    np.subtract(target, scratch, out=target)
    np.multiply(target, inv_capacity, out=target)
    return target


@hot_kernel
def _apply_transpose_shard_batch(
    scatter_idx: np.ndarray,
    row_plane: np.ndarray,
    inv_capacity: np.ndarray,
    pot_rows: np.ndarray,
    trees: int,
    n: int,
) -> np.ndarray:
    """One tree block of ``Rᵀ·g`` for ``Q`` stacked row vectors.

    Returns the *unfolded* ``(Q, trees, n)`` per-tree potentials; the
    coordinator folds trees in global order (same contract as the 1-D
    shard). The flat scatter targets are the shard's 1-D targets offset
    by ``q · trees · (n+1)`` in query-major order, so every diff-plane
    bin accumulates its contributions in the 1-D order and one
    ``np.bincount`` serves all queries bit-identically.
    """
    num_queries, rows = row_plane.shape
    signed = np.empty((num_queries, 2 * rows))  # alloc-ok (per-call plane, pooled upstream)
    np.multiply(row_plane, inv_capacity, out=signed[:, :rows])
    np.negative(signed[:, :rows], out=signed[:, rows:])
    diff_size = trees * (n + 1)
    offsets = np.arange(num_queries, dtype=WIDE_DTYPE) * diff_size  # alloc-ok (Q-length index ramp)
    flat_idx = (scatter_idx[None, :] + offsets[:, None]).ravel()
    diff = np.bincount(
        flat_idx, weights=signed.ravel(), minlength=num_queries * diff_size
    ).reshape(num_queries, trees, n + 1)
    cum = np.empty((num_queries, trees, n))  # alloc-ok (per-call plane, pooled upstream)
    np.cumsum(diff[:, :, :-1], axis=2, out=cum)
    pots = np.empty((num_queries, trees * n))  # alloc-ok (per-call plane, pooled upstream)
    np.take(cum.reshape(num_queries, trees * n), pot_rows, axis=1, out=pots, mode="clip")
    return pots.reshape(num_queries, trees, n)


@hot_kernel
def _apply_transpose_shard(
    scatter_idx: np.ndarray,
    row_values: np.ndarray,
    inv_capacity: np.ndarray,
    pot_rows: np.ndarray,
    trees: int,
    n: int,
    signed: np.ndarray | None = None,
    cum: np.ndarray | None = None,
    pots: np.ndarray | None = None,
) -> np.ndarray:
    """One tree block of ``Rᵀ·g``: per-tree potentials, *unfolded*.

    Returns the ``(trees, n)`` per-tree potential rows rather than
    their sum — the coordinator folds all trees in global tree order,
    which is what keeps the sharded result bit-identical to the serial
    accumulation (a per-shard partial sum would re-associate the
    floating-point fold).
    """
    rows = len(row_values)
    if signed is None:
        signed = np.empty(2 * rows)  # alloc-ok (process-pool shard fallback)
    if cum is None:
        cum = np.empty((trees, n))  # alloc-ok (process-pool shard fallback)
    if pots is None:
        pots = np.empty((trees, n))  # alloc-ok (process-pool shard fallback)
    np.multiply(row_values, inv_capacity, out=signed[:rows])
    np.negative(signed[:rows], out=signed[rows:])
    diff = np.bincount(
        scatter_idx, weights=signed, minlength=trees * (n + 1)
    ).reshape(trees, n + 1)
    np.cumsum(diff[:, :-1], axis=1, out=cum)
    np.take(cum.reshape(-1), pot_rows, out=pots.reshape(-1), mode="clip")
    return pots


class StackedTreeOperator:
    """All per-tree row blocks of R fused into one flat operator.

    Built from the same :class:`TreeOperator` list the per-tree path
    uses, and golden-tested bit-identical to it (``tests/
    test_stacked_operator.py``): identical row order, identical
    floating-point folds.
    """

    def __init__(
        self, operators: Sequence["TreeOperator"], num_nodes: int
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.num_trees = len(operators)
        n = self.num_nodes
        for op in operators:
            if op.tree.num_nodes != n:
                raise GraphError(
                    "stacked operator requires trees over the same node "
                    f"set; got {op.tree.num_nodes} != {n}"
                )
        T = self.num_trees
        if T == 0:
            self._order = np.zeros(0, dtype=WIDE_DTYPE)
        else:
            self._order = np.concatenate([op.order for op in operators])

        # Row bookkeeping (concatenated in tree order, ascending row
        # node within each tree — the per-tree block order).
        tin_rows: list[np.ndarray] = []
        tout_rows: list[np.ndarray] = []
        scatter_tin: list[np.ndarray] = []
        scatter_tout: list[np.ndarray] = []
        pot_rows: list[np.ndarray] = []
        inv_caps: list[np.ndarray] = []
        row_counts: list[int] = []
        for t, op in enumerate(operators):
            row_counts.append(len(op.row_nodes))
            rows_tin = op.tin[op.row_nodes]
            rows_tout = op.tout[op.row_nodes]
            # Row nodes are non-root, so tin >= 1: the exclusive prefix
            # P[k] equals the inclusive prefix Q[k-1].
            tin_rows.append(t * n + rows_tin - 1)
            tout_rows.append(t * n + rows_tout - 1)
            diff_base = t * (n + 1)
            scatter_tin.append(diff_base + rows_tin)
            scatter_tout.append(diff_base + rows_tout)
            pot_rows.append(t * n + op.tin)
            inv_caps.append(op.row_inv_capacity)
        self._tin_rows = _concat_int(tin_rows)
        self._tout_rows = _concat_int(tout_rows)
        self._pot_rows = _concat_int(pot_rows)
        self._row_inv_capacity = (
            np.concatenate(inv_caps) if inv_caps else np.zeros(0)
        )
        # Monotone data epoch of _row_inv_capacity: bumped by every
        # refresh_inv_capacity so cached shard views (aliases of the
        # base vector) are re-exported by the shared-memory arena.
        self._data_version = 0
        self.num_rows = len(self._tin_rows)
        R = self.num_rows
        # Per-tree row boundaries: tree t owns rows
        # _row_offsets[t] : _row_offsets[t + 1] — the shard planner
        # balances tree blocks by these counts.
        self._row_offsets = np.zeros(T + 1, dtype=WIDE_DTYPE)
        np.cumsum(np.asarray(row_counts, dtype=WIDE_DTYPE), out=self._row_offsets[1:])
        self._shard_cache: dict[int, list[_StackedShard]] = {}

        # Transpose scatter targets: fixed per operator, one array
        # (tin adds before tout subtracts — the np.add.at fold order).
        self._scatter_idx = _concat_int(scatter_tin + scatter_tout)
        self._diff_size = T * (n + 1)

        # Preallocated scratch planes (reused across calls; every entry
        # is fully overwritten before it is read).
        self._prefix = np.empty((T, n))
        self._prefix_flat = self._prefix.reshape(-1)
        self._cum = np.empty((T, n))
        self._cum_flat = self._cum.reshape(-1)
        self._pots = np.empty((T, n))
        self._pots_flat = self._pots.reshape(-1)
        self._row_scratch = np.empty(R)
        self._row_buf = np.empty(R)
        self._signed = np.empty(2 * R)
        # Multi-RHS scratch volumes, keyed by query count Q (servers
        # reuse a handful of fixed batch sizes, so the cache stays
        # small); every entry is fully overwritten before it is read.
        self._batch_cache: dict[int, dict[str, np.ndarray]] = {}

    def refresh_inv_capacity(
        self, inv_caps: Sequence[np.ndarray]
    ) -> None:
        """Patch the inverse-capacity row vector in place (capacity-only
        delta; row layout unchanged).

        Every cached shard's ``inv_capacity`` is a read-only *view*
        aliasing the base vector, so the write propagates to every
        shard without re-slicing; the views' shared-memory export tags
        are advanced so the process pool's persistent arena re-exports
        the new bytes on the next map instead of serving stale ones.
        """
        flat = (
            np.concatenate(list(inv_caps))
            if len(inv_caps)
            else np.zeros(0)
        )
        if flat.shape != self._row_inv_capacity.shape:
            raise GraphError(
                f"refresh_inv_capacity: got {flat.shape[0]} rows, "
                f"operator has {self.num_rows}"
            )
        self._row_inv_capacity[:] = flat
        self._data_version += 1
        for shards in self._shard_cache.values():
            for shard in shards:
                tag_array_version(shard.inv_capacity, self._data_version)

    def _batch_scratch(self, num_queries: int) -> dict[str, np.ndarray]:
        """Cached per-Q scratch volumes for the serial batch paths."""
        scratch = self._batch_cache.get(num_queries)
        if scratch is None:
            T, n, R = self.num_trees, self.num_nodes, self.num_rows
            offsets = np.arange(num_queries, dtype=WIDE_DTYPE) * self._diff_size
            scatter_flat = (self._scatter_idx[None, :] + offsets[:, None]).ravel()
            scatter_flat.setflags(write=False)
            scratch = {
                "prefix": np.empty((num_queries, T * n)),
                "row_scratch": np.empty((num_queries, R)),
                "row_buf": np.empty((num_queries, R)),
                "signed": np.empty((num_queries, 2 * R)),
                "cum": np.empty((num_queries, T, n)),
                "pots": np.empty((num_queries, T, n)),
                "scatter_flat": scatter_flat,
            }
            self._batch_cache[num_queries] = scratch
        return scratch

    def _shards_for(self, num_shards: int) -> list[_StackedShard]:
        """Rebased per-shard index arrays for a shard count (cached)."""
        num_shards = max(1, min(int(num_shards), self.num_trees))
        shards = self._shard_cache.get(num_shards)
        if shards is not None:
            return shards
        n = self.num_nodes
        R = self.num_rows
        plan = ShardPlan.balanced(np.diff(self._row_offsets), num_shards)
        shards = []
        for t0, t1 in plan.ranges():
            r0 = int(self._row_offsets[t0])
            r1 = int(self._row_offsets[t1])
            scatter = np.concatenate(
                (self._scatter_idx[r0:r1], self._scatter_idx[R + r0 : R + r1])
            )
            scatter -= t0 * (n + 1)
            trees = t1 - t0
            order = self._order[t0 * n : t1 * n]
            tin_rows = self._tin_rows[r0:r1] - t0 * n
            tout_rows = self._tout_rows[r0:r1] - t0 * n
            inv_capacity = self._row_inv_capacity[r0:r1]
            pot_rows = self._pot_rows[t0 * n : t1 * n] - t0 * n
            # The invariant per-shard arrays are read-only: workers
            # only gather through them, and the flag is what lets the
            # process pool's persistent arena export each one once per
            # operator lifetime instead of once per product call.
            for invariant in (
                order, tin_rows, tout_rows, inv_capacity, scatter, pot_rows
            ):
                invariant.setflags(write=False)
            shards.append(
                _StackedShard(
                    t0=t0,
                    t1=t1,
                    r0=r0,
                    r1=r1,
                    trees=trees,
                    order=order,
                    tin_rows=tin_rows,
                    tout_rows=tout_rows,
                    inv_capacity=inv_capacity,
                    scatter_idx=scatter,
                    pot_rows=pot_rows,
                    prefix=np.empty((trees, n)),
                    row_scratch=np.empty(r1 - r0),
                    signed=np.empty(2 * (r1 - r0)),
                    cum=np.empty((trees, n)),
                    pots=np.empty((trees, n)),
                )
            )
        self._shard_cache[num_shards] = shards
        return shards

    def _sharded_plan(
        self, parallel: ParallelConfig | None
    ) -> tuple[list[_StackedShard], ParallelConfig] | None:
        """The shard list to run, or ``None`` for the serial path."""
        config = resolve_config(parallel)
        if self.num_trees <= 1 or not config.should_shard(
            self.num_trees * self.num_nodes
        ):
            return None
        shards = self._shards_for(config.workers)
        if len(shards) <= 1:
            return None
        return shards, config

    @hot_kernel
    def apply(
        self,
        demand: np.ndarray,
        out: np.ndarray | None = None,
        parallel: ParallelConfig | None = None,
    ) -> np.ndarray:
        """R·b in one pass: gather, row-wise prefix sums, two lookups.

        With ``out=`` (shape ``(num_rows,)``) the serial call is
        allocation free; otherwise a fresh array is returned. Sharded
        calls (``parallel=`` / process default) run tree blocks on the
        worker pool and write each block's rows into ``out`` —
        bit-identical to the serial pass.
        """
        demand = np.asarray(demand, dtype=float)
        if demand.shape != (self.num_nodes,):
            # Must be checked here: the clip-mode gather below would
            # silently wrap a short vector into finite garbage.
            raise GraphError(
                f"demand has shape {demand.shape}, expected "
                f"({self.num_nodes},)"
            )
        if out is None:
            out = np.empty(self.num_rows)  # alloc-ok (unbuffered fallback)
        if self.num_rows == 0:
            return out
        sharded = self._sharded_plan(parallel)
        if sharded is not None:
            shards, config = sharded
            pool = get_pool(config)
            if pool.shares_memory:
                # Workers write straight into the caller's out views
                # using the shard's cached scratch — allocation free.
                pool.map(
                    _apply_shard,
                    [
                        (
                            shard.order,
                            shard.tin_rows,
                            shard.tout_rows,
                            shard.inv_capacity,
                            demand,
                            shard.trees,
                            self.num_nodes,
                            shard.prefix,
                            shard.row_scratch,
                            out[shard.r0 : shard.r1],
                        )
                        for shard in shards
                    ],
                )
            else:
                results = pool.map(
                    _apply_shard,
                    [
                        (
                            shard.order,
                            shard.tin_rows,
                            shard.tout_rows,
                            shard.inv_capacity,
                            demand,
                            shard.trees,
                            self.num_nodes,
                        )
                        for shard in shards
                    ],
                )
                for shard, block in zip(shards, results):
                    out[shard.r0 : shard.r1] = block
            return out
        # mode="clip" skips take's per-element bounds check; every
        # index array here is precomputed in-bounds by construction
        # (and the demand length was validated above).
        np.take(demand, self._order, out=self._prefix_flat, mode="clip")
        np.cumsum(self._prefix, axis=1, out=self._prefix)
        np.take(self._prefix_flat, self._tout_rows, out=out, mode="clip")
        np.take(
            self._prefix_flat,
            self._tin_rows,
            out=self._row_scratch,
            mode="clip",
        )
        np.subtract(out, self._row_scratch, out=out)
        np.multiply(out, self._row_inv_capacity, out=out)
        return out

    @hot_kernel
    def apply_transpose(
        self,
        row_values: np.ndarray,
        out: np.ndarray | None = None,
        parallel: ParallelConfig | None = None,
    ) -> np.ndarray:
        """Rᵀ·g in one pass: planned scatter, row-wise cumsum, gather.

        The sharded path computes each tree block's per-tree potential
        rows on the worker pool and folds them here in global tree
        order — the exact serial accumulation, hence bit-identical.
        """
        row_values = np.asarray(row_values, dtype=float)
        if row_values.shape != (self.num_rows,):
            raise GraphError(
                f"row values have shape {row_values.shape}, expected "
                f"({self.num_rows},)"
            )
        if out is None:
            out = np.empty(self.num_nodes)  # alloc-ok (unbuffered fallback)
        if self.num_rows == 0:
            out[:] = 0.0
            return out
        sharded = self._sharded_plan(parallel)
        if sharded is not None:
            shards, config = sharded
            pool = get_pool(config)
            if pool.shares_memory:
                results = pool.map(
                    _apply_transpose_shard,
                    [
                        (
                            shard.scatter_idx,
                            row_values[shard.r0 : shard.r1],
                            shard.inv_capacity,
                            shard.pot_rows,
                            shard.trees,
                            self.num_nodes,
                            shard.signed,
                            shard.cum,
                            shard.pots,
                        )
                        for shard in shards
                    ],
                )
            else:
                results = pool.map(
                    _apply_transpose_shard,
                    [
                        (
                            shard.scatter_idx,
                            row_values[shard.r0 : shard.r1],
                            shard.inv_capacity,
                            shard.pot_rows,
                            shard.trees,
                            self.num_nodes,
                        )
                        for shard in shards
                    ],
                )
            first = True
            for block in results:
                for t in range(block.shape[0]):
                    if first:
                        out[:] = block[t]
                        first = False
                    else:
                        np.add(out, block[t], out=out)
            return out
        R = self.num_rows
        np.multiply(row_values, self._row_inv_capacity, out=self._signed[:R])
        np.negative(self._signed[:R], out=self._signed[R:])
        diff = np.bincount(
            self._scatter_idx, weights=self._signed, minlength=self._diff_size
        ).reshape(self.num_trees, self.num_nodes + 1)
        np.cumsum(diff[:, :-1], axis=1, out=self._cum)
        np.take(
            self._cum_flat, self._pot_rows, out=self._pots_flat, mode="clip"
        )
        out[:] = self._pots[0]
        for t in range(1, self.num_trees):
            np.add(out, self._pots[t], out=out)
        return out

    @hot_kernel
    def estimate(
        self, demand: np.ndarray, parallel: ParallelConfig | None = None
    ) -> float:
        """‖Rb‖_∞ without allocating (uses the internal row buffer)."""
        y = self.apply(demand, out=self._row_buf, parallel=parallel)
        np.abs(y, out=y)
        return float(y.max(initial=0.0))

    # ------------------------------------------------------------------
    # Multi-RHS (Q, ·) batch paths — bit-identical per query column
    # ------------------------------------------------------------------
    def _sharded_plan_batch(
        self, parallel: ParallelConfig | None, num_queries: int
    ) -> tuple[list[_StackedShard], ParallelConfig] | None:
        """Shard list for a Q-row batch, or ``None`` for serial. Work
        size scales with Q, so batches shard sooner than single calls."""
        config = resolve_config(parallel)
        if self.num_trees <= 1 or not config.should_shard(
            num_queries * self.num_trees * self.num_nodes
        ):
            return None
        shards = self._shards_for(config.workers)
        if len(shards) <= 1:
            return None
        return shards, config

    @hot_kernel
    def apply_batch(
        self,
        demand_plane: np.ndarray,
        out: np.ndarray | None = None,
        parallel: ParallelConfig | None = None,
    ) -> np.ndarray:
        """``R·b`` for ``Q`` stacked demands: ``(Q, n) → (Q, num_rows)``.

        Row ``q`` of the result is **bit-identical** to
        ``apply(demand_plane[q])``: the gather, the per-(q, tree) row
        cumsum, the two lookups and the capacity scaling all reduce over
        the same contiguous rows in the same order — only the ufunc
        dispatch is amortized across queries. Sharded execution reuses
        the cached 1-D shard plans (tree blocks), computed per block
        over all ``Q`` rows and stitched column-wise.
        """
        demand_plane = np.asarray(demand_plane, dtype=float)
        if demand_plane.ndim != 2 or demand_plane.shape[1] != self.num_nodes:
            raise GraphError(
                f"demand plane has shape {demand_plane.shape}, expected "
                f"(Q, {self.num_nodes})"
            )
        num_queries = demand_plane.shape[0]
        if out is None:
            out = np.empty((num_queries, self.num_rows))  # alloc-ok (unbuffered fallback)
        if self.num_rows == 0 or num_queries == 0:
            return out
        sharded = self._sharded_plan_batch(parallel, num_queries)
        if sharded is not None:
            shards, config = sharded
            pool = get_pool(config)
            results = pool.map(
                _apply_shard_batch,
                [
                    (
                        shard.order,
                        shard.tin_rows,
                        shard.tout_rows,
                        shard.inv_capacity,
                        demand_plane,
                        shard.trees,
                        self.num_nodes,
                    )
                    for shard in shards
                ],
            )
            for shard, block in zip(shards, results):
                out[:, shard.r0 : shard.r1] = block
            return out
        scratch = self._batch_scratch(num_queries)
        prefix = scratch["prefix"]
        row_scratch = scratch["row_scratch"]
        T, n = self.num_trees, self.num_nodes
        np.take(demand_plane, self._order, axis=1, out=prefix, mode="clip")
        prefix3 = prefix.reshape(num_queries, T, n)
        np.cumsum(prefix3, axis=2, out=prefix3)
        np.take(prefix, self._tout_rows, axis=1, out=out, mode="clip")
        np.take(prefix, self._tin_rows, axis=1, out=row_scratch, mode="clip")
        np.subtract(out, row_scratch, out=out)
        np.multiply(out, self._row_inv_capacity, out=out)
        return out

    @hot_kernel
    def apply_transpose_batch(
        self,
        row_plane: np.ndarray,
        out: np.ndarray | None = None,
        parallel: ParallelConfig | None = None,
    ) -> np.ndarray:
        """``Rᵀ·g`` for ``Q`` stacked row vectors: ``(Q, R) → (Q, n)``.

        Row ``q`` is bit-identical to ``apply_transpose(row_plane[q])``:
        one query-major offset ``np.bincount`` builds all ``Q`` diff
        planes with the 1-D per-bin accumulation order, the row cumsums
        fold per (q, tree) row, and the per-tree potentials fold in
        global tree order exactly as the serial loop does.
        """
        row_plane = np.asarray(row_plane, dtype=float)
        if row_plane.ndim != 2 or row_plane.shape[1] != self.num_rows:
            raise GraphError(
                f"row plane has shape {row_plane.shape}, expected "
                f"(Q, {self.num_rows})"
            )
        num_queries = row_plane.shape[0]
        if out is None:
            out = np.empty((num_queries, self.num_nodes))  # alloc-ok (unbuffered fallback)
        if num_queries == 0:
            return out
        if self.num_rows == 0:
            out[:] = 0.0
            return out
        sharded = self._sharded_plan_batch(parallel, num_queries)
        if sharded is not None:
            shards, config = sharded
            pool = get_pool(config)
            results = pool.map(
                _apply_transpose_shard_batch,
                [
                    (
                        shard.scatter_idx,
                        row_plane[:, shard.r0 : shard.r1],
                        shard.inv_capacity,
                        shard.pot_rows,
                        shard.trees,
                        self.num_nodes,
                    )
                    for shard in shards
                ],
            )
            first = True
            for block in results:
                for t in range(block.shape[1]):
                    if first:
                        out[:] = block[:, t]
                        first = False
                    else:
                        np.add(out, block[:, t], out=out)
            return out
        scratch = self._batch_scratch(num_queries)
        signed = scratch["signed"]
        cum = scratch["cum"]
        pots = scratch["pots"]
        R = self.num_rows
        T, n = self.num_trees, self.num_nodes
        np.multiply(row_plane, self._row_inv_capacity, out=signed[:, :R])
        np.negative(signed[:, :R], out=signed[:, R:])
        diff = np.bincount(
            scratch["scatter_flat"],
            weights=signed.ravel(),
            minlength=num_queries * self._diff_size,
        ).reshape(num_queries, T, n + 1)
        np.cumsum(diff[:, :, :-1], axis=2, out=cum)
        np.take(
            cum.reshape(num_queries, T * n),
            self._pot_rows,
            axis=1,
            out=pots.reshape(num_queries, T * n),
            mode="clip",
        )
        out[:] = pots[:, 0]
        for t in range(1, T):
            np.add(out, pots[:, t], out=out)
        return out

    @hot_kernel
    def estimate_batch(
        self,
        demand_plane: np.ndarray,
        out: np.ndarray | None = None,
        parallel: ParallelConfig | None = None,
    ) -> np.ndarray:
        """Per-query ``‖R·b_q‖_∞`` as a ``(Q,)`` vector, each entry
        bit-identical to ``estimate(demand_plane[q])``."""
        num_queries = np.asarray(demand_plane).shape[0]
        if self.num_rows == 0:
            result = out if out is not None else np.empty(num_queries)  # alloc-ok (unbuffered fallback)
            result[:] = 0.0
            return result
        row_buf = self._batch_scratch(num_queries)["row_buf"]
        y = self.apply_batch(demand_plane, out=row_buf, parallel=parallel)
        np.abs(y, out=y)
        values = y.max(axis=1, initial=0.0)
        if out is None:
            return values
        out[:] = values
        return out


def _concat_int(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=WIDE_DTYPE)
    return np.concatenate([np.asarray(p, dtype=WIDE_DTYPE) for p in parts])
