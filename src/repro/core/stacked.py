"""Flat stacked congestion-approximator operator (one pass per product).

The per-tree :class:`~repro.core.approximator.TreeOperator`s compute
``R·b`` / ``Rᵀ·g`` one O(n) block at a time — a Python loop over the
O(log n) virtual trees, a ``np.concatenate`` per ``apply``, per-call
index slicing, and two ``ufunc.at`` scatters per ``apply_transpose``.
Since every AlmostRoute gradient step performs both products, that
per-tree dispatch overhead is the end-to-end hot path (measured: the
fused pass below wins ~3×/~2× at n=256/1024 — see
``BENCH_graphcore.json``; the residual floor is the sequential
segmented cumsum plus the scatter, which both paths share). This module fuses the blocks into **one**
stacked operator built once at approximator-construction time, the same
"batch all per-round work into a single synchronous pass" discipline the
hierarchy sampler adopted in PR 2.

Stacked-segment layout
======================

All ``T`` virtual trees span the same ``n`` graph nodes, so every
per-tree array is a fixed-width segment and the stack is a dense plane:

* ``_order`` — ``(T·n,)`` concatenated DFS preorders; entries are node
  ids (< n), i.e. gather indices into the demand vector.
* prefix plane — the gathered demand reshaped ``(T, n)`` and turned
  into inclusive prefix sums by one in-place ``np.cumsum(axis=1)``
  (row-wise cumsum is the *same* sequential left-fold as the per-tree
  1-D cumsum, which is what makes the paths bit-identical). Row nodes
  are never the root, so ``tin ≥ 1`` and the per-tree *exclusive*
  prefix ``P[k]`` is exactly the inclusive ``Q[k−1]`` — no zero column
  needed.
* ``_tin_rows`` / ``_tout_rows`` — flattened indices ``t·n + tin − 1``
  / ``t·n + tout − 1`` of the non-root row nodes, concatenated in tree
  order; ``R·b`` is then two fancy-index lookups into the prefix plane
  plus one multiply by the precomputed ``_row_inv_capacity``.
* scatter plan — the Euler range-update targets of ``Rᵀ·g`` (``+w`` at
  ``tin``, ``−w`` at ``tout``, *unshifted*) are a *fixed* index
  multiset ``concat(t·(n+1)+tin, t·(n+1)+tout)`` into a ``(T, n+1)``
  diff plane, materialized per call by **one**
  ``np.bincount`` over the signed weights (``+w`` then ``-w``).
  ``bincount`` accumulates strictly in input order — the same
  sequential fold as the legacy ``np.add.at``/``np.subtract.at`` pair
  (adds before subtracts, ascending row order within each), so results
  are bit-identical without ``ufunc.at``'s per-element dispatch cost.
  (``np.add.reduceat`` would be allocation free but sums segments
  pairwise, which breaks the bit-identity contract.)
* ``_pot_rows`` — ``(T·n,)`` flattened indices ``t·n + tin`` (all
  nodes) into the row-wise cumsum of the diff plane; the per-tree node
  potentials are gathered in one take and accumulated tree by tree
  (``0 + x == x`` exactly, so the accumulation matches the per-tree
  ``out += block`` loop bit for bit).

Segments sharing one global cumsum would leak floating-point carry
across tree boundaries; the ``(T, ·)`` plane resets every row for free.

All scratch planes are preallocated on the operator, and ``apply`` /
``apply_transpose`` accept ``out=`` — with a caller-provided output
``apply`` allocates nothing and ``apply_transpose``'s only per-call
allocation is ``bincount``'s diff-plane output (the price of the exact
fold), which is what the AlmostRoute workspace
(:class:`~repro.core.almost_route.RouteWorkspace`) relies on.

A natural follow-on (ROADMAP) is sharding the ``(T, ·)`` planes across
workers: rows are independent, so the split is a data partition, not a
rewrite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.approximator import TreeOperator

__all__ = ["StackedTreeOperator"]


class StackedTreeOperator:
    """All per-tree row blocks of R fused into one flat operator.

    Built from the same :class:`TreeOperator` list the per-tree path
    uses, and golden-tested bit-identical to it (``tests/
    test_stacked_operator.py``): identical row order, identical
    floating-point folds.
    """

    def __init__(
        self, operators: Sequence["TreeOperator"], num_nodes: int
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.num_trees = len(operators)
        n = self.num_nodes
        for op in operators:
            if op.tree.num_nodes != n:
                raise GraphError(
                    "stacked operator requires trees over the same node "
                    f"set; got {op.tree.num_nodes} != {n}"
                )
        T = self.num_trees
        if T == 0:
            self._order = np.zeros(0, dtype=np.int64)
        else:
            self._order = np.concatenate([op.order for op in operators])

        # Row bookkeeping (concatenated in tree order, ascending row
        # node within each tree — the per-tree block order).
        tin_rows: list[np.ndarray] = []
        tout_rows: list[np.ndarray] = []
        scatter_tin: list[np.ndarray] = []
        scatter_tout: list[np.ndarray] = []
        pot_rows: list[np.ndarray] = []
        inv_caps: list[np.ndarray] = []
        for t, op in enumerate(operators):
            rows_tin = op.tin[op.row_nodes]
            rows_tout = op.tout[op.row_nodes]
            # Row nodes are non-root, so tin >= 1: the exclusive prefix
            # P[k] equals the inclusive prefix Q[k-1].
            tin_rows.append(t * n + rows_tin - 1)
            tout_rows.append(t * n + rows_tout - 1)
            diff_base = t * (n + 1)
            scatter_tin.append(diff_base + rows_tin)
            scatter_tout.append(diff_base + rows_tout)
            pot_rows.append(t * n + op.tin)
            inv_caps.append(op.row_inv_capacity)
        self._tin_rows = _concat_int(tin_rows)
        self._tout_rows = _concat_int(tout_rows)
        self._pot_rows = _concat_int(pot_rows)
        self._row_inv_capacity = (
            np.concatenate(inv_caps) if inv_caps else np.zeros(0)
        )
        self.num_rows = len(self._tin_rows)
        R = self.num_rows

        # Transpose scatter targets: fixed per operator, one array
        # (tin adds before tout subtracts — the np.add.at fold order).
        self._scatter_idx = _concat_int(scatter_tin + scatter_tout)
        self._diff_size = T * (n + 1)

        # Preallocated scratch planes (reused across calls; every entry
        # is fully overwritten before it is read).
        self._prefix = np.empty((T, n))
        self._prefix_flat = self._prefix.reshape(-1)
        self._cum = np.empty((T, n))
        self._cum_flat = self._cum.reshape(-1)
        self._pots = np.empty((T, n))
        self._pots_flat = self._pots.reshape(-1)
        self._row_scratch = np.empty(R)
        self._row_buf = np.empty(R)
        self._signed = np.empty(2 * R)

    def apply(self, demand: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """R·b in one pass: gather, row-wise prefix sums, two lookups.

        With ``out=`` (shape ``(num_rows,)``) the call is allocation
        free; otherwise a fresh array is returned.
        """
        demand = np.asarray(demand, dtype=float)
        if demand.shape != (self.num_nodes,):
            # Must be checked here: the clip-mode gather below would
            # silently wrap a short vector into finite garbage.
            raise GraphError(
                f"demand has shape {demand.shape}, expected "
                f"({self.num_nodes},)"
            )
        if out is None:
            out = np.empty(self.num_rows)
        if self.num_rows == 0:
            return out
        # mode="clip" skips take's per-element bounds check; every
        # index array here is precomputed in-bounds by construction
        # (and the demand length was validated above).
        np.take(demand, self._order, out=self._prefix_flat, mode="clip")
        np.cumsum(self._prefix, axis=1, out=self._prefix)
        np.take(self._prefix_flat, self._tout_rows, out=out, mode="clip")
        np.take(
            self._prefix_flat,
            self._tin_rows,
            out=self._row_scratch,
            mode="clip",
        )
        np.subtract(out, self._row_scratch, out=out)
        np.multiply(out, self._row_inv_capacity, out=out)
        return out

    def apply_transpose(
        self, row_values: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Rᵀ·g in one pass: planned scatter, row-wise cumsum, gather."""
        row_values = np.asarray(row_values, dtype=float)
        if row_values.shape != (self.num_rows,):
            raise GraphError(
                f"row values have shape {row_values.shape}, expected "
                f"({self.num_rows},)"
            )
        if out is None:
            out = np.empty(self.num_nodes)
        if self.num_rows == 0:
            out[:] = 0.0
            return out
        R = self.num_rows
        np.multiply(row_values, self._row_inv_capacity, out=self._signed[:R])
        np.negative(self._signed[:R], out=self._signed[R:])
        diff = np.bincount(
            self._scatter_idx, weights=self._signed, minlength=self._diff_size
        ).reshape(self.num_trees, self.num_nodes + 1)
        np.cumsum(diff[:, :-1], axis=1, out=self._cum)
        np.take(
            self._cum_flat, self._pot_rows, out=self._pots_flat, mode="clip"
        )
        out[:] = self._pots[0]
        for t in range(1, self.num_trees):
            np.add(out, self._pots[t], out=out)
        return out

    def estimate(self, demand: np.ndarray) -> float:
        """‖Rb‖_∞ without allocating (uses the internal row buffer)."""
        y = self.apply(demand, out=self._row_buf)
        np.abs(y, out=y)
        return float(y.max(initial=0.0))


def _concat_int(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])
