"""Tree-based congestion approximators (paper §§3–4, 9.2).

The approximator R is a stack of row blocks, one per sampled virtual
tree: row (T, v) measures the *signed* congestion that a demand vector
forces through the cut induced by T's subtree at v,

    (R b)_{T,v} = ( Σ_{w ∈ T_v} b_w ) / cap_G(δ(T_v)).

Because every tree edge stores the exact capacity of its induced cut in
G, ``‖Rb‖_∞ ≤ opt(b)`` holds unconditionally (each row is a genuine cut
of G); sampling O(log n) trees from a Räcke-style distribution bounds
the other side by α w.h.p. (Lemma 3.3). Matrix-vector products with R
and Rᵀ are the inner loop of the gradient descent, so both are
implemented with Euler-tour index arithmetic — O(n) NumPy work per tree
per product, the centralized mirror of the Õ(√n + D)-round distributed
convergecast/downcast of Corollary 9.3.

Two bit-identical execution paths compute the products (the adaptive
small-instance convention of the substrate): a per-tree loop over
:class:`TreeOperator` blocks, and — for anything beyond tiny graphs —
the flat fused :class:`~repro.core.stacked.StackedTreeOperator`, which
runs the whole stack as one gather / segmented-cumsum / scatter pass
(see that module's docstring for the stacked-segment layout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.errors import GraphError
from repro.flow.mst import maximum_spanning_tree
from repro.graphs import kernels
from repro.graphs.csr import WIDE_DTYPE
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, bfs_tree, induced_cut_capacities
from repro.core.stacked import StackedTreeOperator
from repro.parallel.config import ParallelConfig
from repro.jtree.hierarchy import HierarchyParams, sample_virtual_trees
from repro.jtree.madry import madry_jtree_step
from repro.lsst.akpw import akpw_spanning_tree
from repro.util.rng import as_generator

__all__ = [
    "TreeOperator",
    "StackedTreeOperator",
    "TreeCongestionApproximator",
    "build_congestion_approximator",
    "racke_sample_trees",
    "estimate_alpha_st",
]


class TreeOperator:
    """Euler-tour representation of one virtual tree's row block.

    Consumes the Euler intervals the :class:`RootedTree` substrate
    already caches (entry/exit indices over a DFS order) so that

    * subtree sums (the R product) are two cumulative-sum lookups, and
    * ancestor-path sums (the Rᵀ product) are one range-update pass,

    both fully vectorized.
    """

    def __init__(self, tree: RootedTree) -> None:
        self.tree = tree
        self.order = tree.euler_order
        self.tin = tree.euler_tin
        self.tout = tree.euler_tout
        # Row book-keeping: one row per non-root node.
        self.row_nodes = np.flatnonzero(
            np.asarray(tree.parent, dtype=WIDE_DTYPE) >= 0
        )
        caps = np.asarray(tree.capacity, dtype=float)[self.row_nodes]
        if np.any(caps <= 0):
            raise GraphError(
                "virtual tree has a zero-capacity induced cut; input graph "
                "must be connected"
            )
        self.row_capacity = caps
        # Precomputed once so both the per-tree and the flat stacked
        # path scale rows with the same multiply (bit-identical folds).
        self.row_inv_capacity = 1.0 / caps
        self._graph_edge_ids: np.ndarray | None = None

    @property
    def num_rows(self) -> int:
        return len(self.row_nodes)

    def graph_edge_ids(self, graph: Graph) -> np.ndarray:
        """The graph edge ids realizing this tree's parent pointers.

        Virtual trees are graph-edge-realized (ClusterGraph Definition
        5.1 condition III): every (v, parent[v]) pair corresponds to at
        least one graph edge, and the lowest-id such edge is returned
        per row (the :func:`~repro.graphs.trees.tree_route_demand`
        convention). Entries are ``-1`` for pairs no graph edge
        realizes (possible for non-hierarchy tree constructions);
        callers treating the result as a resample scope must handle
        ``-1`` conservatively. Cached — valid for capacity-only deltas,
        stale after structural mutation (which forces a full rebuild
        anyway).
        """
        if self._graph_edge_ids is None:
            tails, heads = graph.edge_index_arrays()
            keys, first_eid = kernels.pair_first_edge_index(
                tails, heads, graph.num_nodes
            )
            parents = np.asarray(self.tree.parent, dtype=WIDE_DTYPE)[
                self.row_nodes
            ]
            self._graph_edge_ids = kernels.lookup_pairs(
                keys, first_eid, graph.num_nodes, self.row_nodes, parents
            )
        return self._graph_edge_ids

    def refresh_capacities(self, graph: Graph) -> None:
        """Recompute this tree's induced-cut capacities in place after
        a capacity-only delta (tree structure unchanged).

        The refreshed rows are *exact* cut capacities of the mutated
        graph — :func:`~repro.graphs.trees.induced_cut_capacities` is a
        full recompute, not an increment — so the unconditional
        soundness ``‖Rb‖∞ ≤ opt(b)`` holds at the new epoch exactly as
        at construction. All arrays are updated through ``[:]`` so
        aliases (the stacked operator's concatenated copy is patched
        separately by the caller) never see half-updated state.
        """
        cut = induced_cut_capacities(graph, self.tree)
        caps = cut[self.row_nodes]
        if np.any(caps <= 0):
            raise GraphError(
                "capacity refresh produced a zero-capacity induced cut; "
                "graph must stay connected with positive capacities"
            )
        self.tree.capacity[:] = cut
        self.row_capacity[:] = caps
        np.divide(1.0, caps, out=self.row_inv_capacity)

    def subtree_sums(self, values: np.ndarray) -> np.ndarray:
        """Vectorized subtree sums for all row nodes."""
        prefix = np.concatenate(([0.0], np.cumsum(values[self.order])))
        return prefix[self.tout[self.row_nodes]] - prefix[self.tin[self.row_nodes]]

    def apply(self, demand: np.ndarray) -> np.ndarray:
        """One block of R·b: signed cut congestion per tree edge."""
        return self.subtree_sums(demand) * self.row_inv_capacity

    def apply_transpose(self, row_values: np.ndarray) -> np.ndarray:
        """One block of Rᵀ·g: node potentials π.

        ``π_v = Σ_{rows (T, w): v ∈ T_w} row_values_row / cap_row`` —
        each row's weight is spread over its subtree with a range
        update on the Euler array.
        """
        n = self.tree.num_nodes
        diff = np.zeros(n + 1)
        weights = row_values * self.row_inv_capacity
        np.add.at(diff, self.tin[self.row_nodes], weights)
        np.subtract.at(diff, self.tout[self.row_nodes], weights)
        return np.cumsum(diff[:-1])[self.tin]


@dataclass
class TreeCongestionApproximator:
    """An α-congestion approximator made of virtual trees.

    Attributes:
        graph: The graph the trees approximate.
        operators: One :class:`TreeOperator` per sampled tree.
        alpha: The α used by the gradient descent (an upper bound on the
            worst-case ratio opt(b) / ‖Rb‖_∞; estimated or supplied).
        method: Which construction produced the trees (diagnostics).
        operator_mode: Which product implementation to run —
            ``"adaptive"`` (flat stacked pass beyond tiny graphs, the
            substrate's small-instance convention), ``"flat"`` or
            ``"per_tree"`` (forced; the two are golden-tested
            bit-identical, so forcing is for tests/benchmarks only).
        parallel: Optional sharded-execution config for the flat
            operator's products (``None`` defers to the
            ``REPRO_WORKERS`` process default). Never changes results —
            the sharded products are bit-identical to serial.
    """

    graph: Graph
    operators: list[TreeOperator]
    alpha: float
    method: str = "hierarchy"
    operator_mode: str = "adaptive"
    parallel: ParallelConfig | None = None
    _stacked: StackedTreeOperator | None = field(
        default=None, repr=False, compare=False
    )

    def with_parallel(
        self, parallel: ParallelConfig | None
    ) -> "TreeCongestionApproximator":
        """A shallow twin running its products under ``parallel``.

        Shares the operators and the cached stacked operator (both are
        immutable after construction), so the twin costs nothing to
        make — callers like ``almost_route`` use it to honor a per-call
        config without mutating a shared approximator.
        """
        twin = TreeCongestionApproximator(
            graph=self.graph,
            operators=self.operators,
            alpha=self.alpha,
            method=self.method,
            operator_mode=self.operator_mode,
            parallel=parallel,
        )
        # Build the stacked operator on the original (cached there for
        # every future twin) before sharing, so per-call wrapping never
        # pays the fuse twice.
        twin._stacked = self.stacked() if self._use_flat() else self._stacked
        return twin

    @property
    def num_trees(self) -> int:
        return len(self.operators)

    @property
    def num_rows(self) -> int:
        return sum(op.num_rows for op in self.operators)

    def stacked(self) -> StackedTreeOperator:
        """The flat fused operator (built lazily, then cached; the
        operator list must not be mutated afterwards)."""
        if self._stacked is None:
            self._stacked = StackedTreeOperator(
                self.operators, self.graph.num_nodes
            )
        return self._stacked

    def _use_flat(self) -> bool:
        if self.operator_mode == "flat":
            return True
        if self.operator_mode == "per_tree":
            return False
        if self.operator_mode != "adaptive":
            raise GraphError(
                f"unknown operator_mode {self.operator_mode!r}"
            )
        return not self.graph.is_tiny()

    def apply(
        self, demand: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Compute R·b (concatenated over trees).

        ``out=`` (shape ``(num_rows,)``) makes the flat path allocation
        free; the per-tree path copies into it.
        """
        demand = np.asarray(demand, dtype=float)
        if self._use_flat():
            return self.stacked().apply(demand, out=out, parallel=self.parallel)
        blocks = [op.apply(demand) for op in self.operators]
        result = np.concatenate(blocks) if blocks else np.zeros(0)
        if out is None:
            return result
        out[:] = result
        return out

    def apply_transpose(
        self, row_values: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Compute Rᵀ·g as node potentials."""
        row_values = np.asarray(row_values, dtype=float)
        if self._use_flat():
            return self.stacked().apply_transpose(
                row_values, out=out, parallel=self.parallel
            )
        if out is None:
            out = np.zeros(self.graph.num_nodes)
        else:
            out[:] = 0.0
        offset = 0
        for op in self.operators:
            block = row_values[offset : offset + op.num_rows]
            out += op.apply_transpose(block)
            offset += op.num_rows
        return out

    def estimate(self, demand: np.ndarray) -> float:
        """‖Rb‖_∞ — the lower-bound congestion estimate for ``demand``."""
        if self._use_flat():
            return self.stacked().estimate(
                np.asarray(demand, dtype=float), parallel=self.parallel
            )
        return float(np.abs(self.apply(demand)).max(initial=0.0))

    # ------------------------------------------------------------------
    # Multi-RHS batch products. Always the flat stacked operator —
    # the batch paths exist only there, and they are golden-tested
    # bit-identical per query to both 1-D paths, so there is nothing
    # to dispatch on.
    # ------------------------------------------------------------------
    def apply_batch(
        self, demand_plane: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``R·b`` for ``Q`` stacked demands: ``(Q, n) → (Q, num_rows)``,
        each row bit-identical to :meth:`apply` on that demand."""
        return self.stacked().apply_batch(
            np.asarray(demand_plane, dtype=float),
            out=out,
            parallel=self.parallel,
        )

    def apply_transpose_batch(
        self, row_plane: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``Rᵀ·g`` for ``Q`` stacked row vectors: ``(Q, num_rows) →
        (Q, n)``, each row bit-identical to :meth:`apply_transpose`."""
        return self.stacked().apply_transpose_batch(
            np.asarray(row_plane, dtype=float),
            out=out,
            parallel=self.parallel,
        )

    def estimate_batch(
        self, demand_plane: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-query ``‖R·b_q‖_∞`` as a ``(Q,)`` vector."""
        return self.stacked().estimate_batch(
            np.asarray(demand_plane, dtype=float),
            out=out,
            parallel=self.parallel,
        )

    def trees(self) -> list[RootedTree]:
        return [op.tree for op in self.operators]

    def refresh_capacities(
        self,
        edge_ids: np.ndarray | Sequence[int],
        rng: np.random.Generator | int | None = None,
        hierarchy_params: HierarchyParams | None = None,
    ) -> int:
        """Scoped rebuild after a **capacity-only** delta (the journal's
        ``edge_ids``); structural mutations must rebuild from scratch.

        Two tiers, per the delta's reach:

        * every tree's rows are refreshed in place to the *exact*
          induced-cut capacities of the mutated graph (cut values
          depend on all edge capacities, so this is unconditional) —
          soundness ``‖Rb‖∞ ≤ opt(b)`` therefore holds at the new epoch
          exactly as at construction;
        * trees whose **realized tree edges** intersect the delta are
          resampled (hierarchy method, ``rng`` given): their structure
          was chosen by a sampler that favored the old capacities, and
          a degraded on-tree edge makes the tree a poor router even
          with exact row capacities. Trees with unrealized parent pairs
          are resampled conservatively.

        The cached stacked operator is patched in place when no tree
        was resampled (shard views keep aliasing the same base vector;
        their shared-memory export tags advance) and dropped for lazy
        rebuild otherwise — row counts are stable either way (every
        spanning tree has n-1 rows), so existing
        ``RouteWorkspace``/``BatchRouteWorkspace`` objects stay valid.

        ``alpha`` is deliberately kept: the estimate's safety factor
        absorbs small-delta drift, and refreshing rows to exact cuts
        never invalidates the soundness direction. Callers applying
        large deltas should rebuild.

        Returns:
            The number of trees resampled.
        """
        touched = np.unique(np.asarray(edge_ids, dtype=WIDE_DTYPE))
        resample: list[int] = []
        if rng is not None and self.method == "hierarchy" and touched.size:
            rng = as_generator(rng)
            for t, op in enumerate(self.operators):
                eids = op.graph_edge_ids(self.graph)
                if np.any(eids < 0) or bool(
                    np.isin(eids, touched).any()
                ):
                    resample.append(t)
        if resample:
            samples = sample_virtual_trees(
                self.graph,
                len(resample),
                rng=rng,
                params=hierarchy_params,
                parallel=self.parallel,
            )
            for t, sample in zip(resample, samples):
                self.operators[t] = TreeOperator(sample.tree)
        resampled = set(resample)
        for t, op in enumerate(self.operators):
            if t not in resampled:
                op.refresh_capacities(self.graph)
        if resample:
            self._stacked = None
        elif self._stacked is not None:
            self._stacked.refresh_inv_capacity(
                [op.row_inv_capacity for op in self.operators]
            )
        return len(resample)


def racke_sample_trees(
    graph: Graph,
    num_trees: int,
    rng: np.random.Generator | int | None = None,
    mwu_rounds_per_tree: int = 2,
) -> list[RootedTree]:
    """Sample spanning trees from a flat Räcke MWU distribution.

    This is the no-recursion comparator ("mwu" method): iterate the low
    average-stretch tree construction with multiplicative length
    updates on overloaded tree edges (§8.2's potential argument applied
    directly to G), emitting every ``mwu_rounds_per_tree``-th tree.
    """
    rng = as_generator(rng)
    caps = graph.capacities()
    potentials = np.zeros(graph.num_edges)
    out: list[RootedTree] = []
    iteration = 0
    while len(out) < num_trees:
        lengths = np.exp(np.minimum(potentials, 40.0)) / caps
        lsst = akpw_spanning_tree(graph, lengths=lengths, rng=rng)
        cut_caps = induced_cut_capacities(graph, lsst.tree)
        rload = np.zeros(graph.num_edges)
        tree_edges = np.asarray(lsst.tree_edges, dtype=WIDE_DTYPE)
        tails, heads = graph.edge_index_arrays()
        keys, first = kernels.pair_first_edge_index(
            tails[tree_edges], heads[tree_edges], graph.num_nodes
        )
        parents = np.asarray(lsst.tree.parent, dtype=WIDE_DTYPE)
        nonroot = np.flatnonzero(parents >= 0)
        eids = tree_edges[
            kernels.lookup_pairs(
                keys, first, graph.num_nodes, nonroot, parents[nonroot]
            )
        ]
        rload[eids] = cut_caps[nonroot] / caps[eids]
        r_max = max(float(rload.max()), 1.0)
        potentials += 0.5 * rload / r_max * np.log(max(graph.num_edges, 2))
        iteration += 1
        if iteration % mwu_rounds_per_tree == 0 or len(out) == 0:
            out.append(RootedTree(lsst.tree.parent, cut_caps))
    return out[:num_trees]


def estimate_alpha_st(
    graph: Graph,
    approximator: "TreeCongestionApproximator",
    rng: np.random.Generator | int | None = None,
    trials: int = 8,
    safety: float = 2.0,
) -> float:
    """Empirical α estimate from random s-t demands.

    For an s-t demand, opt(b) = value / maxflow(s, t) exactly (max-flow
    min-cut); the α the descent needs is the worst ratio
    opt(b)/‖Rb‖_∞ over demands, which we lower-bound on sampled pairs
    and inflate by ``safety``.
    """
    from repro.flow.dinic import dinic_max_flow  # local: avoid cycle

    rng = as_generator(rng)
    n = graph.num_nodes
    worst = 1.0
    for _ in range(trials):
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n))
        if s == t:
            continue
        demand = np.zeros(n)
        demand[s], demand[t] = 1.0, -1.0
        value = dinic_max_flow(graph, s, t).value
        if value <= 0:
            # Degenerate/disconnected pair: no finite congestion bound
            # to learn from; skip rather than divide by zero.
            continue
        opt = 1.0 / value
        estimate = approximator.estimate(demand)
        if estimate > 0:
            worst = max(worst, opt / estimate)
    return worst * safety


def build_congestion_approximator(
    graph: Graph,
    num_trees: int | None = None,
    rng: np.random.Generator | int | None = None,
    method: Literal["hierarchy", "mwu", "bfs"] = "hierarchy",
    alpha: float | None = None,
    hierarchy_params: HierarchyParams | None = None,
    parallel: ParallelConfig | None = None,
) -> TreeCongestionApproximator:
    """Build the congestion approximator R (Theorem 8.10 + Lemma 3.3).

    Args:
        graph: Connected capacitated graph.
        num_trees: How many virtual trees to sample; defaults to the
            O(log n) of Lemma 3.3.
        rng: Randomness source.
        method: ``"hierarchy"`` — the paper's recursive j-tree
            construction; ``"mwu"`` — flat Räcke MWU over spanning
            trees (ablation); ``"bfs"`` — one BFS tree plus one
            maximum-capacity spanning tree (naive baseline).
        alpha: Override for the α the descent uses; estimated from
            random s-t demands when omitted.
        hierarchy_params: Tunables for the "hierarchy" method.
        parallel: Optional sharded-execution config stored on the
            approximator: its R / Rᵀ products then run sharded on the
            configured pool (bit-identical to serial), and the
            hierarchy's stacked MWU length evaluations follow it during
            construction. The remaining construction-time kernels (BFS,
            contraction, CSR builds) follow the ``REPRO_WORKERS``
            process default independently.

    Returns:
        A :class:`TreeCongestionApproximator`.
    """
    graph.require_connected()
    rng = as_generator(rng)
    n = graph.num_nodes
    if num_trees is None:
        num_trees = max(2, int(np.ceil(np.log2(max(n, 4)))))

    trees: list[RootedTree] = []
    if method == "hierarchy":
        # Batched level-synchronous sampling: identical trees to the
        # legacy one-sample-at-a-time loop for a fixed seed (the child
        # generators are spawned the same way), but the per-level MWU
        # work is stacked across samples and coinciding cores are
        # shared.
        samples = sample_virtual_trees(
            graph, num_trees, rng=rng, params=hierarchy_params,
            parallel=parallel,
        )
        trees = [sample.tree for sample in samples]
    elif method == "mwu":
        trees = racke_sample_trees(graph, num_trees, rng=rng)
    elif method == "bfs":
        bfs = bfs_tree(graph, root=0)
        trees.append(RootedTree(bfs.parent, induced_cut_capacities(graph, bfs)))
        mst = maximum_spanning_tree(graph)
        trees.append(RootedTree(mst.parent, induced_cut_capacities(graph, mst)))
    else:
        raise GraphError(f"unknown approximator method {method!r}")

    approximator = TreeCongestionApproximator(
        graph=graph,
        operators=[TreeOperator(t) for t in trees],
        alpha=1.0,
        method=method,
        parallel=parallel,
    )
    if alpha is None:
        approximator.alpha = estimate_alpha_st(graph, approximator, rng=rng)
    else:
        approximator.alpha = float(alpha)
    return approximator
