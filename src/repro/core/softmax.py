"""The symmetric soft-max of Sherman's potential (paper §9.1).

``smax(y) = log Σ_i (e^{y_i} + e^{-y_i})`` is the differentiable proxy
for ``‖y‖_∞`` used in both halves of the potential
``φ(f) = smax(C⁻¹f) + smax(2αR(b − Bf))``. Its gradient weights
``g_i = (e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})`` satisfy
``Σ|g_i| ≤ 1`` and concentrate on the largest |y_i| — which is what
makes the descent focus on the most congested edges and cuts.

Everything is computed in log-space with max-subtraction so the
(deliberately large, Θ(ε⁻¹ log n)) arguments never overflow.

:func:`smax_and_gradient` is the per-iteration form: with ``out=`` and
``scratch=`` buffers (both shaped like ``y``) it performs no
allocation, which the AlmostRoute workspace relies on. The buffered and
unbuffered paths execute the identical operation sequence, so results
are bit-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["smax", "smax_gradient", "smax_and_gradient"]


def smax(y: np.ndarray) -> float:
    """Return ``log Σ_i (e^{y_i} + e^{-y_i})``; smax([]) = -inf."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        return float("-inf")
    m = float(np.abs(y).max())
    total = np.exp(y - m).sum() + np.exp(-y - m).sum()
    return m + float(np.log(total))


def smax_gradient(y: np.ndarray) -> np.ndarray:
    """Return the gradient g of smax at y.

    ``g_i = (e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})``, computed
    stably. Satisfies ``Σ_i |g_i| ≤ 1``.
    """
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        return np.zeros(0)
    m = float(np.abs(y).max())
    pos = np.exp(y - m)
    neg = np.exp(-y - m)
    return (pos - neg) / (pos.sum() + neg.sum())


def smax_and_gradient(
    y: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Return ``(smax(y), grad smax(y))`` sharing one pass.

    Args:
        y: Argument vector.
        out: Optional buffer (shape of ``y``) receiving the gradient.
        scratch: Optional same-shaped work buffer; with both buffers
            the call allocates nothing.
    """
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        # Slice (not return) the buffer so the result is always a
        # correctly-shaped empty gradient, never stale buffer content.
        return float("-inf"), (np.zeros(0) if out is None else out[:0])
    for name, buf in (("out", out), ("scratch", scratch)):
        # y is read after the buffers are written; aliasing would
        # silently corrupt both the value and the gradient.
        if buf is not None and np.may_share_memory(buf, y):
            raise ValueError(f"{name} buffer must not alias y")
    m = float(np.abs(y).max())
    pos = out if out is not None else np.empty_like(y)
    neg = scratch if scratch is not None else np.empty_like(y)
    np.subtract(y, m, out=pos)
    np.exp(pos, out=pos)
    np.negative(y, out=neg)
    np.subtract(neg, m, out=neg)
    np.exp(neg, out=neg)
    total = pos.sum() + neg.sum()
    value = m + float(np.log(total))
    np.subtract(pos, neg, out=pos)
    np.true_divide(pos, total, out=pos)
    return value, pos
