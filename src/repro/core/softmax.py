"""The symmetric soft-max of Sherman's potential (paper §9.1).

``smax(y) = log Σ_i (e^{y_i} + e^{-y_i})`` is the differentiable proxy
for ``‖y‖_∞`` used in both halves of the potential
``φ(f) = smax(C⁻¹f) + smax(2αR(b − Bf))``. Its gradient weights
``g_i = (e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})`` satisfy
``Σ|g_i| ≤ 1`` and concentrate on the largest |y_i| — which is what
makes the descent focus on the most congested edges and cuts.

Everything is computed in log-space with max-subtraction so the
(deliberately large, Θ(ε⁻¹ log n)) arguments never overflow.

:func:`smax_and_gradient` is the per-iteration form: with ``out=`` and
``scratch=`` buffers it performs no allocation, which the AlmostRoute
workspace relies on. The preferred scratch is one **contiguous pair
buffer** of shape ``(2k,)``: both exponential families ``e^{y−m}`` and
``e^{−y−m}`` are then evaluated by a *single* ``np.exp`` ufunc call
over the stacked buffer (the two-call form paid a second dispatch +
loop startup for the same element count — measurably so, since the
soft-max is ~a quarter of every AlmostRoute gradient step; see
``benchmarks/test_bench_gradient.py``). A legacy ``(k,)``-shaped
scratch still selects the split two-call path. All paths — fused,
split, unbuffered — execute the identical per-element operations and
the identical two-half summation fold, so results are bit-identical
(golden-tested in ``tests/test_softmax.py``).

:func:`smax_and_gradient_batch` is the multi-query plane form: ``Q``
argument rows evaluated by the same fused pair-buffer sequence over a
``(Q, 2k)`` scratch plane — one ``np.exp`` dispatch for *all* queries.
Every per-row operation (max-subtraction, the stacked exponential, the
two-half row sum, the normalized difference) reduces over the
contiguous last axis exactly as the 1-D path reduces its contiguous
vector, so each row of the batched result is **bit-identical** to
:func:`smax_and_gradient` on that row alone — the contract the batched
AlmostRoute loop (:func:`repro.core.almost_route.almost_route_batch`)
rides on, golden-tested per row in ``tests/test_softmax.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.hotpath import hot_kernel

__all__ = [
    "smax",
    "smax_gradient",
    "smax_and_gradient",
    "smax_and_gradient_batch",
]


def smax(y: np.ndarray) -> float:
    """Return ``log Σ_i (e^{y_i} + e^{-y_i})``; smax([]) = -inf."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        return float("-inf")
    m = float(np.abs(y).max())
    total = np.exp(y - m).sum() + np.exp(-y - m).sum()
    return m + float(np.log(total))


def smax_gradient(y: np.ndarray) -> np.ndarray:
    """Return the gradient g of smax at y.

    ``g_i = (e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})``, computed
    stably. Satisfies ``Σ_i |g_i| ≤ 1``.
    """
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        return np.zeros(0)
    m = float(np.abs(y).max())
    pos = np.exp(y - m)
    neg = np.exp(-y - m)
    return (pos - neg) / (pos.sum() + neg.sum())


@hot_kernel
def smax_and_gradient(
    y: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Return ``(smax(y), grad smax(y))`` sharing one pass.

    Args:
        y: Argument vector of length ``k``.
        out: Optional buffer (shape of ``y``) receiving the gradient.
        scratch: Optional work buffer. Shape ``(2k,)`` selects the
            fused path — both exponential halves live in the one
            buffer and a single ``np.exp`` call evaluates them; shape
            ``(k,)`` selects the legacy split path. With ``out`` and a
            pair scratch the call allocates nothing. All paths are
            bit-identical.
    """
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        # Slice (not return) the buffer so the result is always a
        # correctly-shaped empty gradient, never stale buffer content.
        return float("-inf"), (
            np.zeros(0) if out is None else out[:0]  # alloc-ok (empty input)
        )
    for name, buf in (("out", out), ("scratch", scratch)):
        # y is read after the buffers are written; aliasing would
        # silently corrupt both the value and the gradient.
        if buf is not None and np.may_share_memory(buf, y):
            raise GraphError(f"{name} buffer must not alias y")
    k = y.size
    m = float(np.abs(y).max())
    if scratch is not None and scratch.shape == (k,):
        # Legacy split path: two buffers, two exp calls. Identical
        # per-element operations and summation fold as the fused path.
        pos = out if out is not None else np.empty_like(y)  # alloc-ok (unbuffered fallback)
        neg = scratch
        np.subtract(y, m, out=pos)
        np.exp(pos, out=pos)
        np.negative(y, out=neg)
        np.subtract(neg, m, out=neg)
        np.exp(neg, out=neg)
        total = pos.sum() + neg.sum()
        value = m + float(np.log(total))
        np.subtract(pos, neg, out=pos)
        np.true_divide(pos, total, out=pos)
        return value, pos
    pair = scratch if scratch is not None else np.empty(2 * k)  # alloc-ok (unbuffered fallback)
    pos = pair[:k]
    neg = pair[k:]
    np.subtract(y, m, out=pos)
    np.negative(y, out=neg)
    np.subtract(neg, m, out=neg)
    # One ufunc dispatch for both exponential families.
    np.exp(pair, out=pair)
    total = pos.sum() + neg.sum()
    value = m + float(np.log(total))
    grad = out if out is not None else np.empty_like(y)  # alloc-ok (unbuffered fallback)
    np.subtract(pos, neg, out=grad)
    np.true_divide(grad, total, out=grad)
    return value, grad


@hot_kernel
def smax_and_gradient_batch(
    y: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
    values_out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`smax_and_gradient` over a ``(Q, k)`` plane.

    Returns ``(values, gradients)`` with ``values[q], gradients[q]``
    bit-identical to ``smax_and_gradient(y[q])``: the per-row max
    subtraction, the single stacked ``np.exp`` and the two-half row sum
    reduce over each contiguous row exactly as the 1-D fused path does
    over its vector.

    Args:
        y: C-contiguous argument plane of shape ``(Q, k)``.
        out: Optional ``(Q, k)`` buffer receiving the gradients.
        scratch: Optional ``(Q, 2k)`` pair-plane work buffer; both
            exponential halves live in it and a single ``np.exp``
            evaluates all ``Q`` rows at once.
        values_out: Optional ``(Q,)`` buffer receiving the values.

    With all three buffers the call allocates only the two ``(Q,)``
    reduction temporaries.
    """
    y = np.asarray(y, dtype=float)
    if y.ndim != 2:
        raise GraphError(f"expected a (Q, k) plane, got shape {y.shape}")
    num_queries, k = y.shape
    values = (
        values_out
        if values_out is not None
        else np.empty(num_queries)  # alloc-ok (unbuffered fallback)
    )
    if k == 0:
        values[:] = float("-inf")
        return values, (
            np.zeros((num_queries, 0))  # alloc-ok (empty input)
            if out is None
            else out[:, :0]
        )
    for name, buf in (("out", out), ("scratch", scratch)):
        if buf is not None and np.may_share_memory(buf, y):
            raise GraphError(f"{name} buffer must not alias y")
    pair = (
        scratch
        if scratch is not None
        else np.empty((num_queries, 2 * k))  # alloc-ok (unbuffered fallback)
    )
    if pair.shape != (num_queries, 2 * k):
        raise GraphError(
            f"scratch must have shape {(num_queries, 2 * k)}, "
            f"got {pair.shape}"
        )
    # Per-row max of |y| — same reduction as the 1-D float(abs(y).max()).
    pos = pair[:, :k]
    neg = pair[:, k:]
    np.abs(y, out=pos)
    m = pos.max(axis=1)
    np.subtract(y, m[:, None], out=pos)
    np.negative(y, out=neg)
    np.subtract(neg, m[:, None], out=neg)
    # One ufunc dispatch for both exponential families of all Q rows.
    np.exp(pair, out=pair)
    total = pos.sum(axis=1) + neg.sum(axis=1)
    np.log(total, out=values)
    np.add(values, m, out=values)
    grad = out if out is not None else np.empty_like(y)  # alloc-ok (unbuffered fallback)
    np.subtract(pos, neg, out=grad)
    np.true_divide(grad, total[:, None], out=grad)
    return values, grad
