"""The symmetric soft-max of Sherman's potential (paper §9.1).

``smax(y) = log Σ_i (e^{y_i} + e^{-y_i})`` is the differentiable proxy
for ``‖y‖_∞`` used in both halves of the potential
``φ(f) = smax(C⁻¹f) + smax(2αR(b − Bf))``. Its gradient weights
``g_i = (e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})`` satisfy
``Σ|g_i| ≤ 1`` and concentrate on the largest |y_i| — which is what
makes the descent focus on the most congested edges and cuts.

Everything is computed in log-space with max-subtraction so the
(deliberately large, Θ(ε⁻¹ log n)) arguments never overflow.
"""

from __future__ import annotations

import numpy as np

__all__ = ["smax", "smax_gradient", "smax_and_gradient"]


def smax(y: np.ndarray) -> float:
    """Return ``log Σ_i (e^{y_i} + e^{-y_i})``; smax([]) = -inf."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        return float("-inf")
    m = float(np.abs(y).max())
    total = np.exp(y - m).sum() + np.exp(-y - m).sum()
    return m + float(np.log(total))


def smax_gradient(y: np.ndarray) -> np.ndarray:
    """Return the gradient g of smax at y.

    ``g_i = (e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})``, computed
    stably. Satisfies ``Σ_i |g_i| ≤ 1``.
    """
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        return np.zeros(0)
    m = float(np.abs(y).max())
    pos = np.exp(y - m)
    neg = np.exp(-y - m)
    return (pos - neg) / (pos.sum() + neg.sum())


def smax_and_gradient(y: np.ndarray) -> tuple[float, np.ndarray]:
    """Return ``(smax(y), grad smax(y))`` sharing one pass."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        return float("-inf"), np.zeros(0)
    m = float(np.abs(y).max())
    pos = np.exp(y - m)
    neg = np.exp(-y - m)
    total = pos.sum() + neg.sum()
    return m + float(np.log(total)), (pos - neg) / total
