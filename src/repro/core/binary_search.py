"""The paper's literal max-flow formulation: binary search over F.

Section 3 ("Recall that the problem of approximating a max flow was
translated to minimizing congestion for demands F and −F at s and t and
performing binary search over F"). The scaling shortcut used by
:func:`repro.core.maxflow.max_flow` is equivalent for the s-t case (the
optimal congestion of the unit demand is exactly 1/maxflow); this
module implements the binary search anyway — it is the form that
generalizes to the "undirected cut-based minimization problems" Madry's
sampling argument needs, and it cross-checks the scaling path in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.almost_route import RouteWorkspace
from repro.core.approximator import (
    TreeCongestionApproximator,
    build_congestion_approximator,
)
from repro.core.maxflow import ApproxFlow, min_congestion_flow
from repro.errors import ConvergenceError, InvalidDemandError
from repro.graphs.graph import Graph
from repro.parallel.config import ParallelConfig
from repro.util.rng import as_generator
from repro.util.validation import st_demand

__all__ = ["BinarySearchMaxFlow", "max_flow_binary_search"]


@dataclass
class BinarySearchMaxFlow:
    """Result of the binary-search formulation.

    Attributes:
        value: Largest F whose routing was (1+ε)-feasible, scaled to
            exact feasibility.
        flow: The feasible flow achieving ``value``.
        search_steps: Binary-search iterations performed.
        bracket: Final (low, high) bracket on F.
        final_routing: The :class:`ApproxFlow` of the accepted F.
    """

    value: float
    flow: np.ndarray
    search_steps: int
    bracket: tuple[float, float]
    final_routing: ApproxFlow


def max_flow_binary_search(
    graph: Graph,
    source: int,
    sink: int,
    epsilon: float = 0.25,
    approximator: TreeCongestionApproximator | None = None,
    rng: np.random.Generator | int | None = None,
    tolerance: float = 0.05,
    max_steps: int = 30,
    parallel: ParallelConfig | None = None,
) -> BinarySearchMaxFlow:
    """Approximate max flow by binary search over the demand value F.

    The search brackets the largest F routable with congestion ≤ 1.
    The initial bracket comes from the approximator itself:
    ``1/‖Rb₁‖∞`` upper-bounds maxflow (cut rows are true cuts), and
    that bound divided by the approximator's α lower-bounds it.

    Args:
        graph: Connected capacitated graph.
        source / sink: Terminals.
        epsilon: Accuracy handed to the congestion routing.
        approximator: Optional prebuilt R.
        rng: Randomness for approximator construction.
        tolerance: Relative bracket width at which the search stops.
        max_steps: Hard cap on bisection steps.
        parallel: Optional sharded-execution config for the R products
            across the whole sweep (bit-identical to serial).

    Returns:
        A :class:`BinarySearchMaxFlow`; ``value`` matches the scaling
        method within the bracket tolerance (asserted in tests).
    """
    if source == sink:
        raise InvalidDemandError("source and sink must differ")
    rng = as_generator(rng)
    if approximator is None:
        approximator = build_congestion_approximator(
            graph, rng=rng, parallel=parallel
        )
    elif parallel is not None:
        approximator = approximator.with_parallel(parallel)
    # One AlmostRoute workspace serves the entire bisection sweep.
    workspace = RouteWorkspace(graph, approximator)
    unit = st_demand(graph, source, sink, 1.0)
    unit_estimate = approximator.estimate(unit)
    if unit_estimate <= 0:
        raise InvalidDemandError("degenerate instance: zero cut estimate")
    high = 1.0 / unit_estimate  # certified upper bound on maxflow
    low = high / max(approximator.alpha, 1.0) / 2.0

    best_flow: np.ndarray | None = None
    best_value = 0.0
    best_routing: ApproxFlow | None = None
    steps = 0
    while steps < max_steps and (high - low) > tolerance * max(high, 1e-12):
        middle = math.sqrt(low * high) if low > 0 else high / 2.0
        routing = min_congestion_flow(
            graph,
            st_demand(graph, source, sink, middle),
            epsilon=epsilon,
            approximator=approximator,
            rng=rng,
            workspace=workspace,
        )
        steps += 1
        if routing.congestion <= 1.0 + 1e-12:
            # F = middle is routable: feasible as-is.
            low = middle
            best_flow = routing.flow
            best_value = middle
            best_routing = routing
        else:
            # Infeasible at congestion 1; but scaling down by the
            # achieved congestion still yields a feasible witness.
            scaled_value = middle / routing.congestion
            if scaled_value > best_value:
                best_value = scaled_value
                best_flow = routing.flow / routing.congestion
                best_routing = routing
            high = middle
    if best_flow is None:
        # No accepted step: fall back to scaling the last (or a fresh)
        # unit routing.
        routing = min_congestion_flow(
            graph,
            unit,
            epsilon=epsilon,
            approximator=approximator,
            rng=rng,
            workspace=workspace,
        )
        best_value = 1.0 / routing.congestion
        best_flow = routing.flow / routing.congestion
        best_routing = routing
    if best_routing is None:
        raise ConvergenceError(
            "binary search finished without a feasible routing"
        )
    return BinarySearchMaxFlow(
        value=best_value,
        flow=best_flow,
        search_steps=steps,
        bracket=(low, high),
        final_routing=best_routing,
    )
