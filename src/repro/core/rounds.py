"""End-to-end round accounting (Theorem 1.1's shape, Experiment E1).

Combines *measured* operation counts from an actual pipeline run — the
SplitGraph phases inside every sampled virtual tree, the sparsifier
invocations, the gradient-descent iteration count — with the per-lemma
round charges of :class:`repro.congest.cost.CostModel`. The result is
an itemized estimate of the CONGEST rounds the distributed algorithm of
the paper would spend on this instance, which the benchmarks compare
against the measured rounds of distributed push-relabel and the trivial
O(m) collect-at-one-node bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.congest.cost import CostModel
from repro.core.maxflow import ApproxFlow
from repro.graphs.graph import Graph
from repro.jtree.hierarchy import VirtualTree

__all__ = ["RoundEstimate", "estimate_rounds"]


@dataclass
class RoundEstimate:
    """Itemized round estimate for one max-flow computation.

    Attributes:
        total: Total estimated CONGEST rounds.
        construction: Rounds spent building the approximator.
        descent: Rounds spent in gradient descent.
        breakdown: Per-label round totals (from the cost ledger).
        theorem_bound: The closed-form Theorem 1.1 bound for reference.
        trivial_bound: The O(m) collect-everything baseline.
    """

    total: float
    construction: float
    descent: float
    breakdown: dict[str, float]
    theorem_bound: float
    trivial_bound: float


def estimate_rounds(
    graph: Graph,
    samples: list[VirtualTree],
    flow_result: ApproxFlow,
    epsilon: float,
    diameter: int | None = None,
) -> RoundEstimate:
    """Charge the full pipeline to a :class:`CostModel`.

    Args:
        graph: The instance.
        samples: The virtual trees the approximator was built from
            (their ``phases`` / ``sparsifier_rounds`` fields are the
            measured construction effort).
        flow_result: The routed flow (its ``iterations`` field is the
            measured descent effort).
        epsilon: Accuracy used (for the closed-form reference bound).
        diameter: Pass the diameter if already known (it is Θ(n·BFS)
            work to compute exactly).

    Returns:
        A :class:`RoundEstimate`.
    """
    model = (
        CostModel(graph.num_nodes, diameter)
        if diameter is not None
        else CostModel.for_graph(graph)
    )
    # --- construction -------------------------------------------------
    model.bfs_tree()
    for sample in samples:
        # Every SplitGraph phase is one simulated cluster-graph round
        # (Lemma 5.1 charges (D + √n) per simulated round).
        model.lsst(sample.phases)
        if sample.sparsifier_rounds:
            for _ in range(sample.sparsifier_rounds):
                model.sparsifier()
        for _ in range(max(sample.levels, 1)):
            model.tree_flow_aggregation()  # Lemma 8.3
            model.skeleton_construction()  # Lemma 8.8
            model.tree_decomposition()  # Lemma 8.2
    construction = model.ledger.total
    # --- gradient descent (one aggregate charge; §9.1 cost per step) ---
    per_step = (
        2 * len(samples) * model.base * model.log_n + 4 * model.diameter
    )
    model.ledger.charge("gradient_step", flow_result.iterations * per_step)
    model.mst_and_residual_routing()
    total = model.ledger.total
    return RoundEstimate(
        total=total,
        construction=construction,
        descent=total - construction,
        breakdown=model.ledger.by_label(),
        theorem_bound=model.theorem_1_1_bound(epsilon),
        trivial_bound=model.trivial_upper_bound(graph.num_edges),
    )
