"""Centralized Goldberg–Tarjan push-relabel with FIFO selection.

The paper's Section 1.2 singles out push-relabel as "very local and
simple to implement in the CONGEST model" but needing Ω(n²) rounds; the
distributed variant lives in :mod:`repro.congest.push_relabel`. This
centralized version serves as (a) a third exact oracle and (b) the
reference the distributed one is validated against.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.flow.dinic import MaxFlowResult
from repro.flow.residual import ResidualNetwork
from repro.graphs.graph import Graph

__all__ = ["push_relabel_max_flow"]


def push_relabel_max_flow(graph: Graph, source: int, sink: int) -> MaxFlowResult:
    """Exact max s-t flow via FIFO push-relabel."""
    if source == sink:
        raise GraphError("source and sink must differ")
    net = ResidualNetwork(graph)
    n = net.num_nodes
    height = [0] * n
    excess = [0.0] * n
    height[source] = n

    active: deque[int] = deque()

    def push(arc: int, tail: int) -> None:
        head = net.arc_head[arc]
        amount = min(excess[tail], net.residual(arc))
        net.push(arc, amount)
        excess[tail] -= amount
        if excess[head] == 0.0 and head not in (source, sink):
            active.append(head)
        excess[head] += amount

    # Saturate source arcs.
    for arc in list(net.adjacency[source]):
        if net.residual(arc) > 0:
            excess[source] += net.residual(arc)
            push(arc, source)
    excess[source] = 0.0

    arc_pointer = [0] * n
    while active:
        node = active.popleft()
        while excess[node] > 1e-12:
            if arc_pointer[node] >= len(net.adjacency[node]):
                # Relabel: one more than the lowest admissible neighbor.
                lowest = min(
                    (
                        height[net.arc_head[a]]
                        for a in net.adjacency[node]
                        if net.residual(a) > 1e-12
                    ),
                    default=None,
                )
                if lowest is None:
                    break
                height[node] = lowest + 1
                arc_pointer[node] = 0
                continue
            arc = net.adjacency[node][arc_pointer[node]]
            head = net.arc_head[arc]
            if net.residual(arc) > 1e-12 and height[node] == height[head] + 1:
                push(arc, node)
            else:
                arc_pointer[node] += 1

    value = excess[sink]
    # Min cut from residual reachability.
    reachable = np.flatnonzero(net.reachable_mask(source, threshold=1e-9))
    return MaxFlowResult(
        value=float(value),
        flow=net.net_flow_vector(),
        min_cut_side=frozenset(reachable.tolist()),
    )
