"""Maximum-weight spanning tree (Algorithm 1, step 5).

The paper routes the leftover demand of the gradient descent over a
maximum-capacity spanning tree (computed distributedly with
Kutten–Peleg in Õ(D + √n) rounds; Lemma 9.1). Here we provide the
centralized Kruskal equivalent; the round cost is charged by
:mod:`repro.congest.cost`.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, spanning_tree_from_edges

__all__ = ["maximum_spanning_tree", "minimum_spanning_tree"]


class _DisjointSets:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def _kruskal(graph: Graph, maximize: bool, root: int) -> RootedTree:
    graph.require_connected()
    order = sorted(
        range(graph.num_edges),
        key=lambda eid: graph.capacity(eid),
        reverse=maximize,
    )
    sets = _DisjointSets(graph.num_nodes)
    chosen: list[int] = []
    for eid in order:
        u, v = graph.endpoints(eid)
        if sets.union(u, v):
            chosen.append(eid)
            if len(chosen) == graph.num_nodes - 1:
                break
    tree = spanning_tree_from_edges(graph, chosen, root=root)
    # Attach capacities to the tree edges: capacity of the graph edge
    # joining child and parent (max over parallel edges in `chosen`).
    cap_of_pair: dict[tuple[int, int], float] = {}
    for eid in chosen:
        u, v = graph.endpoints(eid)
        key = (min(u, v), max(u, v))
        cap_of_pair[key] = max(cap_of_pair.get(key, 0.0), graph.capacity(eid))
    caps = [0.0] * graph.num_nodes
    for v in range(graph.num_nodes):
        p = tree.parent[v]
        if p >= 0:
            caps[v] = cap_of_pair[(min(v, p), max(v, p))]
    return RootedTree(tree.parent, caps)


def maximum_spanning_tree(graph: Graph, root: int = 0) -> RootedTree:
    """Spanning tree maximizing total capacity (and, classically, the
    bottleneck capacity on every tree path)."""
    return _kruskal(graph, maximize=True, root=root)


def minimum_spanning_tree(graph: Graph, root: int = 0) -> RootedTree:
    """Spanning tree minimizing total capacity."""
    return _kruskal(graph, maximize=False, root=root)
