"""Maximum-weight spanning tree (Algorithm 1, step 5).

The paper routes the leftover demand of the gradient descent over a
maximum-capacity spanning tree (computed distributedly with
Kutten–Peleg in Õ(D + √n) rounds; Lemma 9.1). Here we provide the
centralized Kruskal equivalent; the round cost is charged by
:mod:`repro.congest.cost`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, spanning_tree_from_edges

__all__ = ["maximum_spanning_tree", "minimum_spanning_tree"]


class _DisjointSets:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def _kruskal(graph: Graph, maximize: bool, root: int) -> RootedTree:
    graph.require_connected()
    caps_arr = graph.capacities()
    # Stable argsort = sorted(..., reverse=maximize): equal capacities
    # keep ascending edge-id order either way.
    order = np.argsort(-caps_arr if maximize else caps_arr, kind="stable")
    tails, heads = graph.edge_index_arrays()
    tails_l, heads_l = tails.tolist(), heads.tolist()
    sets = _DisjointSets(graph.num_nodes)
    chosen: list[int] = []
    for eid in order.tolist():
        if sets.union(tails_l[eid], heads_l[eid]):
            chosen.append(eid)
            if len(chosen) == graph.num_nodes - 1:
                break
    tree = spanning_tree_from_edges(graph, chosen, root=root)
    # Attach capacities to the tree edges: capacity of the graph edge
    # joining child and parent (max over parallel edges in `chosen`).
    chosen_arr = np.asarray(chosen, dtype=np.int64)
    n = graph.num_nodes
    parents = np.asarray(tree.parent, dtype=np.int64)
    nonroot = np.flatnonzero(parents >= 0)
    caps = np.zeros(n)
    if len(chosen_arr):
        lo = np.minimum(tails[chosen_arr], heads[chosen_arr])
        hi = np.maximum(tails[chosen_arr], heads[chosen_arr])
        keys = lo * np.int64(n) + hi
        uniq, inverse = np.unique(keys, return_inverse=True)
        pair_cap = np.full(len(uniq), -np.inf)
        np.maximum.at(pair_cap, inverse, caps_arr[chosen_arr])
        query = (
            np.minimum(nonroot, parents[nonroot]) * np.int64(n)
            + np.maximum(nonroot, parents[nonroot])
        )
        caps[nonroot] = pair_cap[np.searchsorted(uniq, query)]
    return RootedTree(parents, caps)


def maximum_spanning_tree(graph: Graph, root: int = 0) -> RootedTree:
    """Spanning tree maximizing total capacity (and, classically, the
    bottleneck capacity on every tree path)."""
    return _kruskal(graph, maximize=True, root=root)


def minimum_spanning_tree(graph: Graph, root: int = 0) -> RootedTree:
    """Spanning tree minimizing total capacity."""
    return _kruskal(graph, maximize=False, root=root)
