"""Gomory–Hu trees: all-pairs min cuts from n−1 max-flow computations.

A Gomory–Hu tree is a weighted tree on the graph's nodes such that, for
every pair (u, v), the minimum u-v cut capacity equals the minimum edge
weight on the tree path between u and v.

The library uses it as a *validation oracle* for the congestion
approximator: soundness and α-quality can be checked against every s-t
pair at once instead of sampling (see tests and E4). The construction is
Gusfield's simplification (no contractions; n−1 Dinic calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.flow.dinic import dinic_max_flow
from repro.graphs.graph import Graph

__all__ = ["GomoryHuTree", "gomory_hu_tree"]


@dataclass
class GomoryHuTree:
    """All-pairs min-cut tree.

    Attributes:
        parent: ``parent[v]`` — tree parent of node v (root has -1).
        weight: ``weight[v]`` — min-cut capacity between v and
            ``parent[v]`` (the weight of that tree edge).
    """

    parent: list[int]
    weight: list[float]
    _depth: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        n = len(self.parent)
        self._depth = [-1] * n
        for v in range(n):
            # Walk up memoizing depths.
            path = []
            node = v
            while node >= 0 and self._depth[node] < 0:
                path.append(node)
                node = self.parent[node]
            base = self._depth[node] if node >= 0 else -1
            for offset, w in enumerate(reversed(path)):
                self._depth[w] = base + 1 + offset

    def min_cut_value(self, u: int, v: int) -> float:
        """Minimum u-v cut capacity: the lightest edge on the tree path."""
        if u == v:
            raise GraphError("min cut undefined for u == v")
        best = float("inf")
        while self._depth[u] > self._depth[v]:
            best = min(best, self.weight[u])
            u = self.parent[u]
        while self._depth[v] > self._depth[u]:
            best = min(best, self.weight[v])
            v = self.parent[v]
        while u != v:
            best = min(best, self.weight[u], self.weight[v])
            u = self.parent[u]
            v = self.parent[v]
        return best

    def all_pairs_min_cut(self) -> np.ndarray:
        """Dense n×n matrix of min-cut values (diagonal = +inf)."""
        n = len(self.parent)
        out = np.full((n, n), np.inf)
        for u in range(n):
            for v in range(u + 1, n):
                value = self.min_cut_value(u, v)
                out[u, v] = out[v, u] = value
        return out


def gomory_hu_tree(graph: Graph) -> GomoryHuTree:
    """Build a Gomory–Hu tree (Gusfield's algorithm).

    Args:
        graph: Connected undirected capacitated graph.

    Returns:
        A :class:`GomoryHuTree` rooted at node 0. Correctness is
        cross-checked against direct Dinic min cuts in the tests.
    """
    graph.require_connected()
    n = graph.num_nodes
    parent = [0] * n
    weight = [0.0] * n
    for i in range(1, n):
        p = parent[i]
        result = dinic_max_flow(graph, i, p)
        side = result.min_cut_side  # the side containing i
        cut_value = result.value
        for j in range(n):
            if j != i and j in side and parent[j] == p:
                parent[j] = i
        # Gusfield's re-hang: if p's parent fell on i's side, splice i
        # between them.
        if parent[p] != -1 and parent[p] in side and p != 0:
            parent[i] = parent[p]
            parent[p] = i
            weight[i] = weight[p]
            weight[p] = cut_value
        elif p == 0 and i != 0:
            weight[i] = cut_value
        else:
            weight[i] = cut_value
    parent[0] = -1
    weight[0] = 0.0
    return GomoryHuTree(parent=parent, weight=weight)
