"""Residual-network representation shared by the exact max-flow
algorithms (Dinic, Edmonds–Karp, push-relabel).

The undirected input graph is expanded into a directed residual
network: each undirected edge {u, v} of capacity c becomes a pair of
arcs u->v and v->u, *each* with capacity c (an undirected edge can
carry up to c in either direction), plus the usual reverse-arc
bookkeeping. The final undirected flow on edge e is the net of the two
directions, so |f_e| <= cap(e) automatically holds.

The arc structure is derived directly from the graph's cached CSR
adjacency — arc ids are a pure function of edge ids (arc ``2e`` is the
forward direction of edge ``e``, arc ``2e + 1`` the reverse), so the
per-node arc lists are the CSR rows with arc ids computed vectorized,
and no per-edge Python construction happens at all. The same structure
doubles as a :class:`~repro.graphs.csr.CSRAdjacency` over arcs, which
the frontier BFS methods feed to the shared ragged-gather kernel.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import kernels
from repro.graphs.csr import CSRAdjacency
from repro.graphs.graph import Graph

__all__ = ["ResidualNetwork"]


class ResidualNetwork:
    """Arc-list residual network built from an undirected graph.

    Arcs are stored in pairs: arc ``2k`` is the forward direction of
    edge ``k`` (its fixed u->v orientation) and arc ``2k + 1`` is its
    reverse. For an undirected edge of capacity c we create the pair
    (u->v cap c, v->u cap c); the pair is mutually reverse, which
    encodes exactly the undirected capacity constraint |net flow| <= c.

    Attributes:
        arc_indptr / arc_ids: CSR layout of outgoing arcs per node
            (``arc_ids[arc_indptr[v]:arc_indptr[v+1]]``), in
            edge-insertion order — consumed by the vectorized BFS.
        adjacency: The same structure as Python lists (lazily built)
            for the pointer-chasing augmenting-path loops.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = graph.num_nodes
        m = graph.num_edges
        self.num_nodes = n
        csr = graph.csr()
        tails, heads = graph.edge_index_arrays()
        # From node x, edge e offers the arc toward its other endpoint:
        # the forward arc 2e when x is the tail, else the reverse 2e+1.
        self.arc_indptr = csr.indptr
        self.arc_ids = 2 * csr.edge_id + (csr.neighbor == tails[csr.edge_id])
        head_arr = np.empty(2 * m, dtype=np.int64)
        caps = np.empty(2 * m, dtype=float)
        head_arr[0::2] = heads
        head_arr[1::2] = tails
        caps[0::2] = graph.capacities()
        caps[1::2] = caps[0::2]
        self._head_arr = head_arr
        # The arc structure is itself a CSR over arcs: the "neighbor"
        # of an incidence is the arc's head, which is exactly the CSR
        # neighbor; the "edge id" is the arc id.
        self._arc_csr = CSRAdjacency(
            indptr=csr.indptr, neighbor=csr.neighbor, edge_id=self.arc_ids
        )
        self.arc_head: list[int] = head_arr.tolist()
        self.arc_cap: list[float] = caps.tolist()
        self.arc_edge: list[int] = np.repeat(
            np.arange(m, dtype=np.int64), 2
        ).tolist()
        self._adjacency: list[list[int]] | None = None

    @property
    def adjacency(self) -> list[list[int]]:
        """Per-node outgoing arc lists (edge-insertion order)."""
        if self._adjacency is None:
            ptr = self.arc_indptr.tolist()
            ids = self.arc_ids.tolist()
            self._adjacency = [
                ids[ptr[v] : ptr[v + 1]] for v in range(self.num_nodes)
            ]
        return self._adjacency

    @staticmethod
    def reverse(arc: int) -> int:
        """Return the index of the reverse arc."""
        return arc ^ 1

    def push(self, arc: int, amount: float) -> None:
        """Send ``amount`` along ``arc`` (decreasing its residual
        capacity and increasing the reverse's)."""
        self.arc_cap[arc] -= amount
        self.arc_cap[arc ^ 1] += amount

    def residual(self, arc: int) -> float:
        """Remaining capacity of ``arc``."""
        return self.arc_cap[arc]

    def residual_vector(self) -> np.ndarray:
        """Snapshot of all arc residuals (for the vectorized BFS)."""
        return np.asarray(self.arc_cap, dtype=float)

    def _admissible_heads(
        self, frontier: np.ndarray, residual: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Heads of the frontier's arcs with residual above threshold."""
        _, heads, arcs = kernels.ragged_rows(self._arc_csr, frontier)
        return heads[residual[arcs] > threshold]

    def reachable_mask(self, source: int, threshold: float = 1e-12) -> np.ndarray:
        """Nodes reachable from ``source`` via arcs with residual above
        ``threshold`` (frontier-at-a-time BFS over the arc CSR)."""
        residual = self.residual_vector()
        seen = np.zeros(self.num_nodes, dtype=bool)
        seen[source] = True
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            nbrs = self._admissible_heads(frontier, residual, threshold)
            frontier = np.unique(nbrs[~seen[nbrs]])
            seen[frontier] = True
        return seen

    def bfs_levels(
        self, source: int, sink: int, threshold: float = 1e-12
    ) -> list[int] | None:
        """Level graph for blocking-flow phases: hop distance from
        ``source`` along arcs with residual above ``threshold``;
        ``None`` when the sink is unreachable."""
        residual = self.residual_vector()
        level = np.full(self.num_nodes, -1, dtype=np.int64)
        level[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            nbrs = self._admissible_heads(frontier, residual, threshold)
            frontier = np.unique(nbrs[level[nbrs] < 0])
            if frontier.size == 0:
                break
            depth += 1
            level[frontier] = depth
        if level[sink] < 0:
            return None
        return level.tolist()

    def net_flow_vector(self) -> np.ndarray:
        """Recover the undirected flow vector (indexed by graph edge id,
        positive in the fixed u->v orientation) from residual state.

        For the arc pair of edge e with original capacity c: both
        directions start at capacity c; pushing x along u->v leaves
        r_fwd = c - x, r_rev = c + x, so net = (r_rev - r_fwd) / 2 = x.
        """
        caps = self.residual_vector()
        return (caps[1::2] - caps[0::2]) / 2.0
