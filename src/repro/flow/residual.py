"""Residual-network representation shared by the exact max-flow
algorithms (Dinic, Edmonds–Karp, push-relabel).

The undirected input graph is expanded into a directed residual
network: each undirected edge {u, v} of capacity c becomes a pair of
arcs u->v and v->u, *each* with capacity c (an undirected edge can
carry up to c in either direction), plus the usual reverse-arc
bookkeeping. The final undirected flow on edge e is the net of the two
directions, so |f_e| <= cap(e) automatically holds.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["ResidualNetwork"]


class ResidualNetwork:
    """Arc-list residual network built from an undirected graph.

    Arcs are stored in pairs: arc ``2k`` is the forward direction of
    some (u, v) and arc ``2k + 1`` is its reverse. For an undirected
    edge of capacity c we create the pair (u->v cap c, v->u cap c); the
    pair is mutually reverse, which encodes exactly the undirected
    capacity constraint |net flow| <= c.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = graph.num_nodes
        self.num_nodes = n
        self.arc_head: list[int] = []
        self.arc_cap: list[float] = []
        self.arc_edge: list[int] = []  # originating undirected edge id
        self.adjacency: list[list[int]] = [[] for _ in range(n)]
        for e in graph.edges():
            self._add_arc_pair(e.u, e.v, e.capacity, e.capacity, e.id)

    def _add_arc_pair(
        self, u: int, v: int, cap_uv: float, cap_vu: float, edge_id: int
    ) -> None:
        a = len(self.arc_head)
        self.arc_head.extend([v, u])
        self.arc_cap.extend([float(cap_uv), float(cap_vu)])
        self.arc_edge.extend([edge_id, edge_id])
        self.adjacency[u].append(a)
        self.adjacency[v].append(a + 1)

    @staticmethod
    def reverse(arc: int) -> int:
        """Return the index of the reverse arc."""
        return arc ^ 1

    def push(self, arc: int, amount: float) -> None:
        """Send ``amount`` along ``arc`` (decreasing its residual
        capacity and increasing the reverse's)."""
        self.arc_cap[arc] -= amount
        self.arc_cap[arc ^ 1] += amount

    def residual(self, arc: int) -> float:
        """Remaining capacity of ``arc``."""
        return self.arc_cap[arc]

    def net_flow_vector(self) -> np.ndarray:
        """Recover the undirected flow vector (indexed by graph edge id,
        positive in the fixed u->v orientation) from residual state.

        For the arc pair of edge e with original capacity c: flow in the
        forward direction is c - residual(forward). Net signed flow is
        (c - r_fwd) - (c - r_rev) all divided by 2? No — both directions
        start at capacity c; pushing x along u->v leaves r_fwd = c - x,
        r_rev = c + x, so net = (r_rev - r_fwd) / 2 = x.
        """
        flow = np.zeros(self.graph.num_edges)
        for pair in range(self.graph.num_edges):
            fwd = 2 * pair
            rev = fwd + 1
            flow[pair] = (self.arc_cap[rev] - self.arc_cap[fwd]) / 2.0
        return flow
