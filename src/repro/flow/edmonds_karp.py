"""Edmonds–Karp exact maximum flow.

A second, independent exact oracle. The test suite cross-checks Dinic
against Edmonds–Karp so that a bug in the shared residual machinery or
in either algorithm can't silently corrupt the ground truth used to
grade the approximate pipeline.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.flow.dinic import MaxFlowResult
from repro.flow.residual import ResidualNetwork
from repro.graphs.graph import Graph

__all__ = ["edmonds_karp_max_flow"]


def edmonds_karp_max_flow(graph: Graph, source: int, sink: int) -> MaxFlowResult:
    """Exact max s-t flow via shortest augmenting paths (BFS)."""
    if source == sink:
        raise GraphError("source and sink must differ")
    net = ResidualNetwork(graph)
    value = 0.0
    while True:
        # BFS for an augmenting path.
        parent_arc = [-1] * net.num_nodes
        parent_arc[source] = -2
        queue = deque([source])
        found = False
        while queue and not found:
            node = queue.popleft()
            for arc in net.adjacency[node]:
                head = net.arc_head[arc]
                if parent_arc[head] == -1 and net.residual(arc) > 1e-12:
                    parent_arc[head] = arc
                    if head == sink:
                        found = True
                        break
                    queue.append(head)
        if not found:
            break
        # Find bottleneck and augment.
        bottleneck = float("inf")
        node = sink
        while node != source:
            arc = parent_arc[node]
            bottleneck = min(bottleneck, net.residual(arc))
            node = net.arc_head[arc ^ 1]
        node = sink
        while node != source:
            arc = parent_arc[node]
            net.push(arc, bottleneck)
            node = net.arc_head[arc ^ 1]
        value += bottleneck
    reachable = np.flatnonzero(net.reachable_mask(source, threshold=1e-9))
    return MaxFlowResult(
        value=value,
        flow=net.net_flow_vector(),
        min_cut_side=frozenset(reachable.tolist()),
    )
