"""Dinic's exact maximum-flow algorithm.

This is the library's ground-truth oracle: every approximate flow the
Sherman pipeline produces is validated against the value Dinic
computes. (The paper uses exact max flow only implicitly, via the
max-flow min-cut theorem; for a reproduction we need the oracle to
measure approximation ratios.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.flow.residual import ResidualNetwork
from repro.graphs.graph import Graph

__all__ = ["MaxFlowResult", "dinic_max_flow"]


@dataclass(frozen=True)
class MaxFlowResult:
    """Result of an exact max-flow computation.

    Attributes:
        value: The maximum flow value.
        flow: Signed flow per undirected edge id (positive along the
            edge's fixed u->v orientation).
        min_cut_side: Source side of a minimum cut (node ids), certified
            by the final residual reachability.
    """

    value: float
    flow: np.ndarray
    min_cut_side: frozenset[int]


def _dfs_blocking(
    net: ResidualNetwork,
    node: int,
    sink: int,
    pushed: float,
    level: list[int],
    arc_iter: list[int],
) -> float:
    if node == sink:
        return pushed
    adjacency = net.adjacency[node]
    while arc_iter[node] < len(adjacency):
        arc = adjacency[arc_iter[node]]
        head = net.arc_head[arc]
        if level[head] == level[node] + 1 and net.residual(arc) > 1e-12:
            amount = _dfs_blocking(
                net, head, sink, min(pushed, net.residual(arc)), level, arc_iter
            )
            if amount > 0:
                net.push(arc, amount)
                return amount
        arc_iter[node] += 1
    return 0.0


def dinic_max_flow(graph: Graph, source: int, sink: int) -> MaxFlowResult:
    """Compute the exact maximum s-t flow of an undirected graph.

    Args:
        graph: Undirected capacitated graph.
        source: Source node.
        sink: Sink node (must differ from source).

    Returns:
        A :class:`MaxFlowResult` with the optimal value, a feasible flow
        achieving it, and a certified minimum cut.
    """
    if source == sink:
        raise GraphError("source and sink must differ")
    for node in (source, sink):
        if not (0 <= node < graph.num_nodes):
            raise GraphError(f"node {node} out of range")
    net = ResidualNetwork(graph)
    value = 0.0
    while True:
        level = net.bfs_levels(source, sink)
        if level is None:
            break
        arc_iter = [0] * net.num_nodes
        while True:
            pushed = _dfs_blocking(
                net, source, sink, float("inf"), level, arc_iter
            )
            if pushed <= 0:
                break
            value += pushed
    # Min cut: nodes reachable in the final residual network.
    reachable = np.flatnonzero(net.reachable_mask(source, threshold=1e-9))
    return MaxFlowResult(
        value=value,
        flow=net.net_flow_vector(),
        min_cut_side=frozenset(reachable.tolist()),
    )
