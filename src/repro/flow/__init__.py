"""Classical flow algorithms: exact oracles, baselines, and tree routing."""

from repro.flow.dinic import MaxFlowResult, dinic_max_flow
from repro.flow.edmonds_karp import edmonds_karp_max_flow
from repro.flow.push_relabel import push_relabel_max_flow
from repro.flow.mst import maximum_spanning_tree, minimum_spanning_tree
from repro.flow.residual import ResidualNetwork
from repro.flow.gomory_hu import GomoryHuTree, gomory_hu_tree

__all__ = [
    "MaxFlowResult",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "push_relabel_max_flow",
    "maximum_spanning_tree",
    "minimum_spanning_tree",
    "ResidualNetwork",
    "GomoryHuTree",
    "gomory_hu_tree",
]
