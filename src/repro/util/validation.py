"""Flow and demand validation.

Every flow the library emits is checked against the paper's three
constraint families (Section 1.1): capacity constraints, conservation
constraints, and the source/sink value constraint. Centralizing the
checks lets tests and the public API share one definition of
"feasible".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidDemandError, InvalidFlowError
from repro.graphs.graph import Graph

__all__ = [
    "check_demand",
    "check_demand_batch",
    "st_demand",
    "check_flow_conservation",
    "check_flow_capacity",
    "check_feasible_flow",
    "flow_value",
    "max_congestion",
]


def check_demand(graph: Graph, demand: Sequence[float], tol: float = 1e-9) -> np.ndarray:
    """Validate a demand vector b: right length, finite, Σb = 0.

    Returns the demand as a float array.
    """
    demand = np.asarray(demand, dtype=float)
    if demand.shape != (graph.num_nodes,):
        raise InvalidDemandError(
            f"demand has shape {demand.shape}, expected ({graph.num_nodes},)"
        )
    if not np.all(np.isfinite(demand)):
        raise InvalidDemandError("demand contains non-finite entries")
    scale = max(1.0, float(np.abs(demand).max()))
    if abs(float(demand.sum())) > tol * scale * graph.num_nodes:
        raise InvalidDemandError(
            f"demand must sum to zero, sums to {demand.sum():g}"
        )
    return demand


def check_demand_batch(
    graph: Graph, demands: Sequence[Sequence[float]], tol: float = 1e-9
) -> np.ndarray:
    """Validate a ``(Q, n)`` plane of stacked demand vectors.

    Applies the :func:`check_demand` criteria row by row (each row's
    zero-sum tolerance uses that row's own scale) and names the first
    offending query. Returns the plane as a C-contiguous float array.
    """
    demands = np.ascontiguousarray(demands, dtype=float)
    if demands.ndim != 2 or demands.shape[1] != graph.num_nodes:
        raise InvalidDemandError(
            f"demand plane has shape {demands.shape}, expected "
            f"(Q, {graph.num_nodes})"
        )
    finite = np.isfinite(demands).all(axis=1)
    if not finite.all():
        q = int(np.argmin(finite))
        raise InvalidDemandError(
            f"demand {q} contains non-finite entries"
        )
    scales = np.maximum(1.0, np.abs(demands).max(axis=1, initial=0.0))
    sums = demands.sum(axis=1)
    bad = np.abs(sums) > tol * scales * graph.num_nodes
    if bad.any():
        q = int(np.argmax(bad))
        raise InvalidDemandError(
            f"demand {q} must sum to zero, sums to {sums[q]:g}"
        )
    return demands


def st_demand(graph: Graph, source: int, sink: int, value: float = 1.0) -> np.ndarray:
    """Return the s-t demand vector with +value at source, -value at
    sink (paper Section 2: positive b_s, negative b_t)."""
    if source == sink:
        raise InvalidDemandError("source and sink must differ")
    for node in (source, sink):
        if not (0 <= node < graph.num_nodes):
            raise InvalidDemandError(f"node {node} out of range")
    demand = np.zeros(graph.num_nodes)
    demand[source] = float(value)
    demand[sink] = -float(value)
    return demand


def check_flow_conservation(
    graph: Graph,
    flow: Sequence[float],
    demand: Sequence[float],
    tol: float = 1e-6,
) -> None:
    """Check conservation for a routed demand.

    Sign convention (used throughout the library): a flow ``f`` routes
    demand ``b`` iff the net flow *out of* every node v equals b_v.
    Since ``graph.excess(f)[v]`` is the net flow *into* v, the check is
    ``b + B f = 0``. A source has positive demand, a sink negative.
    """
    flow = np.asarray(flow, dtype=float)
    demand = np.asarray(demand, dtype=float)
    residual = demand + graph.excess(flow)
    # residual_v = b_v - net_outflow_v; must vanish for a routed demand.
    scale = max(1.0, float(np.abs(demand).max()), float(np.abs(flow).max()))
    worst = float(np.abs(residual).max())
    if worst > tol * scale:
        raise InvalidFlowError(
            f"conservation violated: max residual {worst:g} (scale {scale:g})"
        )


def check_flow_capacity(
    graph: Graph, flow: Sequence[float], tol: float = 1e-6
) -> None:
    """Check |f_e| <= cap(e) (1 + tol) for every edge."""
    flow = np.asarray(flow, dtype=float)
    caps = graph.capacities()
    violation = np.abs(flow) - caps * (1.0 + tol)
    worst = float(violation.max(initial=0.0))
    if worst > 0:
        eid = int(np.argmax(violation))
        raise InvalidFlowError(
            f"capacity violated on edge {eid}: |f|={abs(flow[eid]):g} "
            f"> cap={caps[eid]:g}"
        )


def check_feasible_flow(
    graph: Graph,
    flow: Sequence[float],
    demand: Sequence[float],
    tol: float = 1e-6,
) -> None:
    """Check both capacity and conservation for a routed demand."""
    check_flow_capacity(graph, flow, tol)
    check_flow_conservation(graph, flow, demand, tol)


def flow_value(
    graph: Graph, flow: Sequence[float], source: int, sink: int
) -> float:
    """Net flow leaving ``source`` (should equal net flow entering
    ``sink`` for a conserved s-t flow)."""
    flow = np.asarray(flow, dtype=float)
    return float(-graph.excess(flow)[source])


def max_congestion(graph: Graph, flow: Sequence[float]) -> float:
    """Return ``‖C^{-1} f‖_∞``, the max edge congestion."""
    return float(graph.congestion(np.asarray(flow, dtype=float)).max(initial=0.0))
