"""Shared utilities: seeded randomness and flow validation."""

from repro.util.rng import as_generator, spawn
from repro.util.validation import (
    check_demand,
    check_feasible_flow,
    check_flow_capacity,
    check_flow_conservation,
    flow_value,
    max_congestion,
    st_demand,
)

__all__ = [
    "as_generator",
    "spawn",
    "check_demand",
    "check_feasible_flow",
    "check_flow_capacity",
    "check_flow_conservation",
    "flow_value",
    "max_congestion",
    "st_demand",
]
