"""Seeded randomness plumbing.

Every randomized component in the library accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh
entropy). Centralizing the coercion here keeps experiment scripts
reproducible with a single seed argument.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn"]


def as_generator(
    rng: np.random.Generator | int | None = None,
) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Args:
        rng: ``None`` (fresh OS entropy), an integer seed, or an
            existing generator (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used when a construction runs independent randomized subroutines
    (e.g. the O(log n) independent tree samples of Lemma 3.3) whose
    randomness must not interact.
    """
    return [np.random.default_rng(seed) for seed in rng.integers(0, 2**63, count)]
