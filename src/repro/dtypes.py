"""The substrate's two integer dtype lanes, single point of control.

This module is a dependency leaf (NumPy only) so every layer —
including :mod:`repro.parallel`, which :mod:`repro.graphs.csr` itself
imports for sharded builds — can name the lanes without an import
cycle. :mod:`repro.graphs.csr` re-exports them, and most code keeps
importing from there.

The repolint ``index-dtype`` rule enforces that kernel code under
``graphs/``, ``core/`` and ``parallel/`` spells these names instead of
literal ``np.int32``/``np.int64``/``int`` dtypes, so re-narrowing (or
a compiled tier's choice of index width) stays a one-line switch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["INDEX_DTYPE", "MAX_INDEX", "WIDE_DTYPE"]

#: Storage dtype for node and edge ids across the array substrate
#: (PR 2's int32 narrowing: ids stay below :data:`MAX_INDEX`, and
#: halving index bandwidth speeds every gather in the hot kernels).
INDEX_DTYPE = np.int32

#: Largest representable id; the ``Graph`` boundary guards against
#: node/edge counts ever reaching this (2^31 − 1 ≈ 2·10^9 incidences).
MAX_INDEX = int(np.iinfo(INDEX_DTYPE).max)

#: The deliberate 64-bit integer lane: overflow-proof pair keys
#: (``u * n + v`` would wrap in int32), cumulative counts (``indptr``
#: folds over 2m incidences), and sentinel-valued distance/parent
#: arrays whose itemsize is pinned by the CONGEST bandwidth-accounting
#: goldens.
WIDE_DTYPE = np.int64
