"""Bounded out-degree edge orientation (paper §6, end of Lemma 6.1).

After sparsification each cluster must manage only O(polylog) outgoing
edges; the paper's little algorithm achieves out-degree O(d_avg) in
O(D + log n) rounds: repeatedly, every node with fewer than 2·d_avg
unoriented incident edges orients them all outward and halts. At least
half the remaining nodes halt per iteration (their average degree can't
exceed twice the global average), so log n iterations suffice.
"""

from __future__ import annotations

__all__ = ["orient_edges"]

from repro.errors import GraphError
from repro.graphs.graph import Graph


def orient_edges(graph: Graph, max_iterations: int | None = None) -> list[bool]:
    """Orient all edges with out-degree O(average degree) per node.

    Returns:
        ``forward[eid]`` — True if edge eid is oriented along its fixed
        u→v direction (i.e. *u* owns it), False if v owns it.

    Raises:
        GraphError: If the iteration bound is exceeded (cannot happen
            for correct inputs; guards against regressions).
    """
    n = graph.num_nodes
    m = graph.num_edges
    if m == 0:
        return []
    if max_iterations is None:
        max_iterations = 2 * max(1, n.bit_length()) + 2
    average_degree = 2.0 * m / n
    threshold = 2.0 * average_degree
    forward: list[bool | None] = [None] * m
    unoriented_degree = [graph.degree(v) for v in range(n)]
    halted = [False] * n

    for _ in range(max_iterations):
        if all(f is not None for f in forward):
            break
        # All nodes below threshold act simultaneously (ties: if both
        # endpoints act this iteration, the smaller id wins the edge).
        acting = [
            v
            for v in range(n)
            if not halted[v] and unoriented_degree[v] < threshold
        ]
        acting_set = set(acting)
        for v in acting:
            for neighbor, eid in graph.neighbors(v):
                if forward[eid] is not None:
                    continue
                if neighbor in acting_set and neighbor < v:
                    continue  # neighbor claims it
                u, _ = graph.endpoints(eid)
                forward[eid] = u == v
                unoriented_degree[neighbor] -= 1
            unoriented_degree[v] = 0
            halted[v] = True
    if any(f is None for f in forward):
        raise GraphError("edge orientation failed to converge")
    return [bool(f) for f in forward]
