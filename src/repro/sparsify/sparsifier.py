"""Cut sparsification by iterated spanner peeling (paper Lemma 6.1).

Koutis's parallel/distributed sparsifier works in rounds: compute an
O(log N)-stretch spanner of the current graph, keep its edges with
their capacities, and keep each non-spanner edge independently with
probability 1/4 at capacity ×4 (unbiased for every cut). Each round
shrinks the non-spanner part geometrically, so O(log m / n) rounds
reach Õ(N) edges; the spanner skeleton guarantees no cut loses more
than a constant factor w.h.p., and averaging over rounds concentrates
cut capacities within 1 ± ε for the polylog-sized result the paper
needs (it applies the sparsifier with constant ε and absorbs the error
into α).

The output graph is on the same node set; each output edge remembers
the input edge it came from (for mapping virtual edges to physical
edges in the cluster-graph machinery, Definition 5.1 condition IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.sparsify.spanner import baswana_sen_spanner
from repro.util.rng import as_generator

__all__ = ["SparsifierResult", "sparsify", "sparsification_target"]

#: Keep probability for non-spanner edges per peeling round.
KEEP_PROBABILITY = 0.25


@dataclass
class SparsifierResult:
    """Result of cut sparsification.

    Attributes:
        graph: The sparsified graph (same node set, reweighted).
        edge_origin: For each output edge, the input edge id it derives
            from.
        rounds: Peeling rounds executed.
        input_edges: m of the input.
    """

    graph: Graph
    edge_origin: list[int]
    rounds: int
    input_edges: int


def sparsification_target(num_nodes: int, epsilon: float) -> int:
    """Õ(N/ε²) edge target of Lemma 6.1 (constants sized for the
    graph scales this library runs at)."""
    n = max(num_nodes, 2)
    return int(2 * n * max(1.0, math.log2(n)) / max(epsilon, 1e-3) ** 0.5)


def sparsify(
    graph: Graph,
    epsilon: float = 0.5,
    rng: np.random.Generator | int | None = None,
    target_edges: int | None = None,
    max_rounds: int = 40,
) -> SparsifierResult:
    """Sparsify ``graph`` to Õ(N) edges preserving cuts within
    roughly 1 ± ε.

    Args:
        graph: Input (multi)graph.
        epsilon: Cut approximation parameter (constant in the paper's
            recursion; it absorbs the error into the congestion
            approximator's α).
        rng: Randomness source.
        target_edges: Stop once the edge count is at most this
            (default :func:`sparsification_target`).
        max_rounds: Safety bound on peeling rounds.

    Returns:
        A :class:`SparsifierResult`.
    """
    if not 0 < epsilon <= 1:
        raise GraphError(f"epsilon must be in (0, 1], got {epsilon}")
    rng = as_generator(rng)
    if target_edges is None:
        target_edges = sparsification_target(graph.num_nodes, epsilon)

    current = graph
    origin = list(range(graph.num_edges))
    rounds = 0
    while current.num_edges > target_edges and rounds < max_rounds:
        spanner = baswana_sen_spanner(current, rng=rng)
        in_spanner = np.zeros(current.num_edges, dtype=bool)
        in_spanner[spanner.edge_ids] = True
        keep = rng.random(current.num_edges) < KEEP_PROBABILITY
        next_graph = Graph(current.num_nodes)
        next_origin: list[int] = []
        for e in current.edges():
            if in_spanner[e.id]:
                next_graph.add_edge(e.u, e.v, e.capacity)
                next_origin.append(origin[e.id])
            elif keep[e.id]:
                next_graph.add_edge(
                    e.u, e.v, e.capacity / KEEP_PROBABILITY
                )
                next_origin.append(origin[e.id])
        if next_graph.num_edges >= current.num_edges:
            break  # spanner covers everything; no further progress
        current, origin = next_graph, next_origin
        rounds += 1
    return SparsifierResult(
        graph=current,
        edge_origin=origin,
        rounds=rounds,
        input_edges=graph.num_edges,
    )
