"""Cut sparsifiers via Baswana–Sen spanners (paper Section 6)."""

from repro.sparsify.spanner import SpannerResult, baswana_sen_spanner
from repro.sparsify.sparsifier import (
    SparsifierResult,
    sparsification_target,
    sparsify,
)
from repro.sparsify.orientation import orient_edges

__all__ = [
    "SpannerResult",
    "baswana_sen_spanner",
    "SparsifierResult",
    "sparsification_target",
    "sparsify",
    "orient_edges",
]
