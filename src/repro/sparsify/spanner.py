"""Baswana–Sen O(log N)-stretch spanner (paper Figure 3).

The spanner is the inner loop of Koutis's sparsifier (Lemma 6.1). The
randomized clustering runs for log N levels: clusters survive with
probability 1/2 per level; a node whose cluster dies either joins the
nearest surviving cluster (adding the connecting edge plus all strictly
lighter inter-cluster edges) or, if it has no surviving neighbor
cluster, adds the lightest edge to *every* adjacent cluster and leaves
the clustering. Finally every node connects to each adjacent surviving
cluster with its lightest edge.

Expected size is O(N log N) edges and the stretch is O(log N) w.r.t.
the length function (we use ℓ = 1/cap so the spanner keeps the
high-capacity skeleton, which is what cut sparsification needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.util.rng import as_generator

__all__ = ["SpannerResult", "baswana_sen_spanner"]


@dataclass
class SpannerResult:
    """Spanner output.

    Attributes:
        edge_ids: Ids of the graph edges selected into the spanner.
        levels: Number of clustering levels executed.
    """

    edge_ids: list[int]
    levels: int


def _lightest_per_cluster(
    graph: Graph,
    node: int,
    cluster: list[int | None],
    lengths: np.ndarray,
    restrict_to: set[int] | None = None,
) -> dict[int, int]:
    """Return {cluster_id: lightest edge id} over edges from ``node`` to
    clustered neighbors (optionally restricted to given cluster ids).
    Ties broken by edge id for determinism."""
    best: dict[int, int] = {}
    for neighbor, eid in graph.neighbors(node):
        cid = cluster[neighbor]
        if cid is None:
            continue
        if restrict_to is not None and cid not in restrict_to:
            continue
        if cid not in best or (
            (lengths[eid], eid) < (lengths[best[cid]], best[cid])
        ):
            best[cid] = eid
    return best


def baswana_sen_spanner(
    graph: Graph,
    lengths: Sequence[float] | None = None,
    rng: np.random.Generator | int | None = None,
    levels: int | None = None,
) -> SpannerResult:
    """Compute a Baswana–Sen spanner.

    Args:
        graph: Connected or disconnected (multi)graph.
        lengths: Edge lengths; defaults to ``1/cap`` so that the spanner
            preferentially keeps high-capacity edges.
        rng: Randomness source.
        levels: Number of clustering levels; defaults to ceil(log2 N).

    Returns:
        A :class:`SpannerResult` with the chosen edge ids.
    """
    rng = as_generator(rng)
    n = graph.num_nodes
    if lengths is None:
        lengths = 1.0 / graph.capacities()
    else:
        lengths = np.asarray(lengths, dtype=float)
    if levels is None:
        levels = max(1, int(np.ceil(np.log2(max(n, 2)))))

    spanner: set[int] = set()
    # cluster[v] = id of v's cluster (None once v leaves the clustering).
    cluster: list[int | None] = list(range(n))

    for _ in range(levels):
        cluster_ids = {cid for cid in cluster if cid is not None}
        if not cluster_ids:
            break
        marked = {cid for cid in cluster_ids if rng.random() < 0.5}
        new_cluster: list[int | None] = list(cluster)
        for v in range(n):
            cid = cluster[v]
            if cid is None:
                continue
            if cid in marked:
                continue  # cluster survives; v stays put
            # v's cluster died. Lightest edge per adjacent cluster:
            lightest = _lightest_per_cluster(graph, v, cluster, lengths)
            marked_adjacent = {
                c: e for c, e in lightest.items() if c in marked
            }
            if not marked_adjacent:
                # No surviving neighbor cluster: keep one lightest edge
                # per adjacent cluster and leave the clustering
                # (Figure 3, step 2(b)ii).
                spanner.update(lightest.values())
                new_cluster[v] = None
            else:
                # Join the nearest surviving cluster; keep that edge and
                # every strictly lighter inter-cluster edge
                # (Figure 3, step 2(b)iii).
                join_cluster, join_edge = min(
                    marked_adjacent.items(),
                    key=lambda item: (lengths[item[1]], item[1]),
                )
                spanner.add(join_edge)
                new_cluster[v] = join_cluster
                threshold = lengths[join_edge]
                for c, e in lightest.items():
                    if c != join_cluster and (lengths[e], e) < (
                        threshold,
                        join_edge,
                    ):
                        spanner.add(e)
        cluster = new_cluster

    # Step 3: every node adds the lightest edge to each adjacent
    # surviving cluster (its own cluster excluded).
    for v in range(n):
        lightest = _lightest_per_cluster(graph, v, cluster, lengths)
        for c, e in lightest.items():
            if c != cluster[v]:
                spanner.add(e)
    return SpannerResult(edge_ids=sorted(spanner), levels=levels)
