"""AKPW low average-stretch spanning trees (paper §7, Theorem 3.1).

The outer algorithm of Alon, Karp, Peleg, and West, in the
parallel-friendly formulation of Blelloch et al. that the paper
translates to CONGEST:

1. Partition the edges into O(√log N) *length classes*: class i holds
   edges with length in ``[z^{i-1}, z^i)`` for
   ``z = 2^Θ(√(log N log log N))``.
2. Iterate: call Partition on the edges of classes ``1..j`` with target
   radius ``ρ = z/4``; output a BFS tree inside every cluster; contract
   the clusters (keeping parallel edges); proceed to class ``j+1``.
3. Stop when a single node remains; the union of all intra-cluster BFS
   trees is a spanning tree of the original graph.

The expected stretch is ``2^O(√(log N log log N))`` (Theorem 3.1);
Experiment E3 measures it. The implementation supports multigraphs and
arbitrary positive edge lengths, exactly as Theorem 3.1 requires for
its use inside Madry's construction (where lengths come from the
multiplicative-weights update and the graph is a contracted core).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, spanning_tree_from_edges
from repro.lsst.partition import partition
from repro.util.rng import as_generator

__all__ = ["LsstResult", "akpw_spanning_tree", "default_class_base"]


@dataclass
class LsstResult:
    """A low-stretch spanning tree with construction metadata.

    Attributes:
        tree: The spanning tree, rooted at node 0, with no capacities
            attached (callers attach induced-cut capacities).
        tree_edges: Graph edge ids forming the tree.
        iterations: Number of contract-and-recurse iterations.
        phases: Total SplitGraph phases executed (for round accounting;
            the CONGEST cost is ``phases · Õ(D + √n)``, Lemma 5.1).
        class_base: The z parameter used.
    """

    tree: RootedTree
    tree_edges: list[int]
    iterations: int
    phases: int
    class_base: float


def default_class_base(num_nodes: int) -> float:
    """The paper's ``z = 2^Θ(√(log N log log N))`` with constant 1.

    For the graph sizes a Python reproduction reaches (n ≤ ~10^4) the
    theoretical constant 6 inside the square root would make z exceed
    any realistic diameter, collapsing the class structure; constant 1
    keeps the multi-class behaviour observable while preserving the
    asymptotic form.
    """
    log_n = max(2.0, math.log2(num_nodes))
    return max(4.0, 2.0 ** math.sqrt(log_n * max(1.0, math.log2(log_n))))


def akpw_spanning_tree(
    graph: Graph,
    lengths: Sequence[float] | None = None,
    rng: np.random.Generator | int | None = None,
    class_base: float | None = None,
    root: int = 0,
) -> LsstResult:
    """Compute a low average-stretch spanning tree.

    Args:
        graph: Connected (multi)graph.
        lengths: Positive edge lengths (defaults to all-ones; Madry's
            construction passes ``1/cap``-derived lengths here).
        rng: Randomness source.
        class_base: The z parameter; default :func:`default_class_base`.
        root: Root of the returned tree.

    Returns:
        An :class:`LsstResult` whose tree spans ``graph``.
    """
    graph.require_connected()
    rng = as_generator(rng)
    n = graph.num_nodes
    if n == 1:
        return LsstResult(RootedTree([-1]), [], 0, 0, 0.0)
    z = class_base if class_base is not None else default_class_base(n)
    if z <= 1:
        raise GraphError("class_base must exceed 1")
    if lengths is None:
        # Unit lengths: every edge normalizes to 1 and lands in class 1.
        edge_class = np.ones(graph.num_edges, dtype=np.int64)
    else:
        lengths = np.asarray(lengths, dtype=float)
        if lengths.shape != (graph.num_edges,):
            raise GraphError("lengths must have one entry per edge")
        if np.any(lengths <= 0) or not np.all(np.isfinite(lengths)):
            raise GraphError("lengths must be positive and finite")
        # Normalize so the smallest length is 1, then classify:
        # class i = edges with length in [z^{i-1}, z^i).
        normalized = lengths / lengths.min()
        edge_class = np.floor(np.log(normalized) / math.log(z)).astype(int) + 1
    rho = max(1, int(z / 4.0))

    # Working state: the current contracted multigraph and a map from
    # its edges back to original edge ids. The input graph itself seeds
    # the iteration — nothing below mutates it, and reusing it keeps
    # its cached CSR/adjacency warm for the first partition call.
    current = graph
    edge_origin = np.arange(graph.num_edges, dtype=np.int64)
    tree_edges: list[int] = []
    iterations = 0
    phases = 0

    max_class = int(edge_class.max())
    j = 1
    stalls = 0
    while current.num_nodes > 1:
        current_classes = edge_class[edge_origin]
        result = partition(
            current,
            current_classes,
            active_classes=j,
            target_radius=rho,
            rng=rng,
        )
        phases += result.phases
        split = result.split
        # Intra-cluster BFS tree edges become spanning tree edges.
        parent_eids = np.asarray(split.parent_edge, dtype=np.int64)
        tree_edges.extend(edge_origin[parent_eids[parent_eids >= 0]].tolist())
        # Contract clusters.
        contracted, new_origin = current.contract(split.cluster)
        edge_origin = edge_origin[np.asarray(new_origin, dtype=np.int64)]
        contracted_something = contracted.num_nodes < len(split.cluster)
        current = contracted
        iterations += 1
        if j < max_class:
            j += 1
        elif not contracted_something:
            # All classes are already active; an iteration that merged
            # nothing was just unlucky randomness — retry with fresh
            # randomness (bounded, so a logic bug cannot spin forever).
            stalls += 1
            if stalls > 50:
                raise GraphError("AKPW stalled without contracting")
    tree = spanning_tree_from_edges(graph, tree_edges, root=root)
    return LsstResult(
        tree=tree,
        tree_edges=tree_edges,
        iterations=iterations,
        phases=phases,
        class_base=z,
    )
