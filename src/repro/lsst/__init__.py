"""Low average-stretch spanning trees (paper Section 7, Theorem 3.1)."""

from repro.lsst.split_graph import SplitGraphResult, split_graph
from repro.lsst.partition import PartitionResult, partition
from repro.lsst.akpw import LsstResult, akpw_spanning_tree, default_class_base
from repro.lsst.stretch import (
    stretch_per_edge,
    summarize_stretch,
    tree_edge_lengths,
)

__all__ = [
    "SplitGraphResult",
    "split_graph",
    "PartitionResult",
    "partition",
    "LsstResult",
    "akpw_spanning_tree",
    "default_class_base",
    "stretch_per_edge",
    "summarize_stretch",
    "tree_edge_lengths",
]
