"""Stretch measurement for spanning trees (paper §7 definitions).

The quality measure of Theorem 3.1 is the average stretch
``(1/m) Σ_{u,v ∈ E} d_T(u, v) / ℓ(u, v)``; Madry's construction needs
the capacity-weighted variant of Eq. (2). Both are computed here from a
:class:`~repro.graphs.trees.RootedTree` using tree lengths induced by
the graph's length function.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TreeError
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree

__all__ = ["tree_edge_lengths", "stretch_per_edge", "summarize_stretch"]


def tree_edge_lengths(
    graph: Graph,
    tree: RootedTree,
    lengths: Sequence[float] | None = None,
) -> np.ndarray:
    """Assign each tree edge (v, parent[v]) the minimum graph length
    among parallel graph edges joining v and parent[v].

    Args:
        graph: The host graph.
        tree: A spanning tree whose edges are graph edges.
        lengths: Per-graph-edge lengths (default all ones).

    Returns:
        Array L with L[v] = length of tree edge (v, parent[v]).
    """
    if lengths is None:
        lengths = np.ones(graph.num_edges)
    lengths = np.asarray(lengths, dtype=float)
    best: dict[tuple[int, int], float] = {}
    for e in graph.edges():
        key = (min(e.u, e.v), max(e.u, e.v))
        value = float(lengths[e.id])
        if key not in best or value < best[key]:
            best[key] = value
    out = np.zeros(tree.num_nodes)
    for v in range(tree.num_nodes):
        p = tree.parent[v]
        if p < 0:
            continue
        key = (min(v, p), max(v, p))
        if key not in best:
            raise TreeError(f"tree edge ({v}, {p}) is not a graph edge")
        out[v] = best[key]
    return out


def stretch_per_edge(
    graph: Graph,
    tree: RootedTree,
    lengths: Sequence[float] | None = None,
) -> np.ndarray:
    """Return stretch_T(e) = d_T(u, v) / ℓ(e) for every graph edge."""
    if lengths is None:
        lengths = np.ones(graph.num_edges)
    lengths = np.asarray(lengths, dtype=float)
    tree_lengths = tree_edge_lengths(graph, tree, lengths)
    out = np.zeros(graph.num_edges)
    for e in graph.edges():
        d_t = tree.path_length(e.u, e.v, tree_lengths)
        out[e.id] = d_t / float(lengths[e.id])
    return out


def summarize_stretch(
    graph: Graph,
    tree: RootedTree,
    lengths: Sequence[float] | None = None,
) -> dict[str, float]:
    """Average / max / capacity-weighted stretch summary (E3 metrics)."""
    stretches = stretch_per_edge(graph, tree, lengths)
    caps = graph.capacities()
    return {
        "average": float(stretches.mean()),
        "max": float(stretches.max()),
        "capacity_weighted": float((stretches * caps).sum() / caps.sum()),
    }
