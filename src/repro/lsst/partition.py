"""Algorithm Partition (paper §7, following Blelloch et al.).

Partition wraps SplitGraph with *class awareness*: the edges are
partitioned into K weight classes, SplitGraph runs disregarding the
classes, and the result is accepted only if no class had too many of
its edges split between clusters. On rejection the decomposition is
restarted with fresh randomness; w.h.p. O(log N) restarts suffice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.lsst.split_graph import SplitGraphResult, split_graph
from repro.util.rng import as_generator

__all__ = ["PartitionResult", "partition"]

#: Acceptance constant: class i is over-split when more than
#: OVER_SPLIT_CONSTANT * log(N) / rho of its edges are cut.
OVER_SPLIT_CONSTANT = 12.0


@dataclass
class PartitionResult:
    """A class-respecting low-diameter decomposition.

    Attributes:
        split: The accepted SplitGraph decomposition.
        restarts: Number of rejected attempts before acceptance.
        cut_fraction_per_class: Fraction of each class's edges cut by
            the accepted decomposition.
        phases: Total SplitGraph phases over all attempts (for round
            accounting — restarts cost real rounds).
    """

    split: SplitGraphResult
    restarts: int
    cut_fraction_per_class: list[float]
    phases: int


def partition(
    graph: Graph,
    edge_class: Sequence[int],
    active_classes: int,
    target_radius: int,
    rng: np.random.Generator | int | None = None,
    max_restarts: int | None = None,
) -> PartitionResult:
    """Run SplitGraph until no active class is over-split.

    Args:
        graph: The current (multi)graph.
        edge_class: ``edge_class[eid]`` in ``1..K``; edges of class
            > ``active_classes`` are ignored entirely (not traversed,
            not counted).
        active_classes: Edges of classes ``1..active_classes`` are
            BFS-traversable and checked for over-splitting.
        target_radius: The ρ handed to SplitGraph.
        rng: Randomness source.
        max_restarts: Restart budget; defaults to ``4·ceil(log2 N)``.
            If exhausted, the attempt with the smallest worst-class cut
            fraction is returned (a deterministic fallback keeps the
            pipeline total; the theory says this is reached with
            probability < 1/poly(N)).

    Returns:
        A :class:`PartitionResult`.
    """
    rng = as_generator(rng)
    n = graph.num_nodes
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    if max_restarts is None:
        max_restarts = 4 * log_n
    classes = np.asarray(edge_class, dtype=np.int64)
    active_mask = (classes >= 1) & (classes <= active_classes)
    active_edges: np.ndarray | None = np.flatnonzero(active_mask)
    if len(active_edges) == graph.num_edges:
        active_edges = None  # every edge traversable: skip mask plumbing
    class_sizes = np.bincount(
        classes[active_mask], minlength=active_classes + 1
    ).tolist()
    threshold_fraction = min(
        1.0, OVER_SPLIT_CONSTANT * log_n / max(1, target_radius)
    )
    tiny = graph.is_tiny()
    classes_list = classes.tolist() if tiny else None

    best: tuple[float, SplitGraphResult, list[float]] | None = None
    phases = 0
    for attempt in range(max_restarts + 1):
        split = split_graph(
            graph, target_radius, rng=rng, active_edges=active_edges
        )
        phases += split.phases
        if tiny:
            cut_per_class = [0] * (active_classes + 1)
            for eid in split.cut_edges:
                cls = classes_list[eid]
                if 1 <= cls <= active_classes:
                    cut_per_class[cls] += 1
        else:
            cut = np.asarray(split.cut_edges, dtype=np.int64)
            cut = cut[active_mask[cut]] if len(cut) else cut
            cut_per_class = np.bincount(
                classes[cut], minlength=active_classes + 1
            ).tolist()
        fractions = [
            c / s if s else 0.0 for c, s in zip(cut_per_class, class_sizes)
        ]
        worst = max(fractions) if fractions else 0.0
        if best is None or worst < best[0]:
            best = (worst, split, fractions)
        if worst <= threshold_fraction:
            return PartitionResult(
                split=split,
                restarts=attempt,
                cut_fraction_per_class=fractions[1:],
                phases=phases,
            )
    if best is None:
        raise GraphError(
            "partition restarts exhausted without recording a best split"
        )
    return PartitionResult(
        split=best[1],
        restarts=max_restarts,
        cut_fraction_per_class=best[2][1:],
        phases=phases,
    )
