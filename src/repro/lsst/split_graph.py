"""Algorithm SplitGraph (paper Figure 4): low-diameter decomposition.

Given an unweighted (multi)graph and a target radius ρ, SplitGraph
partitions the nodes into clusters of radius at most ρ such that, in
expectation, only an O(log N / ρ) fraction of edges is cut. It works in
2·log N phases: phase t samples a geometrically growing set of sources
S_t, each source waits a random delay and then grows a BFS ball; a node
joins the cluster of the first BFS that reaches it (ties by source id).

This is the engine of the AKPW low-stretch spanning tree (§7) and runs
in O(ρ log N) simulated rounds; the distributed round cost is charged
via :meth:`repro.congest.cost.CostModel.lsst` using the *measured*
phase count this implementation reports.

Execution is adaptive over the shared array substrate: small instances
run a sequential-heap ball growing over the graph's cached adjacency
(NumPy's fixed per-call cost would dominate their tiny frontiers);
large instances run frontier-at-a-time over the CSR adjacency — one
lexsort pass claims every node reached in a time step (the natural
vectorization of "all balls grow one hop per round"). Both paths
resolve ties identically — winner = lexicographically smallest
``(arrival, source, parent, parent-edge)`` — and are pinned equal by
the golden tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.util.rng import as_generator

__all__ = ["SplitGraphResult", "split_graph"]


@dataclass
class SplitGraphResult:
    """Outcome of a SplitGraph decomposition.

    Attributes:
        cluster: ``cluster[v]`` = cluster id of node v (cluster ids are
            the source node ids).
        parent: BFS-tree parent of v inside its cluster (-1 at sources).
        parent_edge: Graph edge id to the parent (-1 at sources).
        radius: Max BFS depth realized in any cluster.
        phases: Number of sequential BFS phases executed — the quantity
            the round-cost model charges (each phase is one simulated
            cluster-graph round, Lemma 5.1).
        cut_edges: Edge ids whose endpoints landed in different clusters.
    """

    cluster: list[int]
    parent: list[int]
    parent_edge: list[int]
    radius: int
    phases: int
    cut_edges: list[int]


def _sample_sources(
    rng: np.random.Generator,
    vt: np.ndarray,
    t: int,
    num_nodes: int,
    max_delay: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw phase-t sources and delays (Figure 4, steps 2a/2c).

    Source density grows by 2^{t/2} per phase, reaching 1 by the final
    phase t = 2 log n, which guarantees full coverage; delays are
    uniform in [0, max_delay]. When ``max_delay`` is 0 the delay
    distribution is the constant 0 and no randomness is consumed
    (width-1 ``integers`` draws no bits, so this is stream-neutral).
    """
    probability = min(1.0, 2 ** (t / 2.0) / num_nodes)
    picks = rng.random(len(vt)) < probability
    sources = vt[picks]
    if sources.size == 0:
        sources = vt[rng.integers(0, len(vt))][None]
    if max_delay == 0:
        delays = np.zeros(len(sources), dtype=np.int64)
    else:
        delays = rng.integers(0, max_delay + 1, size=len(sources))
    return sources, delays


def _grow_balls_heap(
    adjacency: list[list[tuple[int, int]]],
    sources: list[int],
    delays: list[int],
    budget: int,
    allowed: list[bool] | None,
    cluster: list[int],
    parent: list[int],
    parent_edge: list[int],
    depth: list[int],
    unclaimed: list[bool],
) -> None:
    """One phase of delayed ball growing, sequential-heap flavor.

    Priority: (arrival_time, source_id, node, parent, edge) — the first
    BFS to visit wins, ties by source id then parent then edge.
    """
    zero_delays = not any(delays)
    delay_of = None if zero_delays else dict(zip(sources, delays))
    heappush, heappop = heapq.heappush, heapq.heappop
    heap: list[tuple[int, int, int, int, int]] = []
    for s, d in zip(sources, delays):
        if d < budget:
            heappush(heap, (d, s, s, -1, -1))
    while heap:
        time, src, node, par, pedge = heappop(heap)
        if not unclaimed[node]:
            continue
        cluster[node] = src
        parent[node] = par
        parent_edge[node] = pedge
        depth[node] = time if zero_delays else time - delay_of[src]
        unclaimed[node] = False
        time += 1
        if time > budget:
            continue
        if allowed is None:
            for neighbor, eid in adjacency[node]:
                if unclaimed[neighbor]:
                    heappush(heap, (time, src, neighbor, node, eid))
        else:
            for neighbor, eid in adjacency[node]:
                if allowed[eid] and unclaimed[neighbor]:
                    heappush(heap, (time, src, neighbor, node, eid))


def _grow_balls_frontier(
    csr,
    sources: np.ndarray,
    delays: np.ndarray,
    budget: int,
    allowed: np.ndarray | None,
    cluster: np.ndarray,
    parent: np.ndarray,
    parent_edge: np.ndarray,
    depth: np.ndarray,
    unclaimed: np.ndarray,
) -> None:
    """One phase of delayed ball growing, frontier-at-a-time flavor.

    At each time step every pending arrival for a still-unclaimed node
    competes; the winner is the lexicographically smallest
    (source, parent, parent-edge) — exactly the heap's pop order.
    """
    n = len(cluster)
    delay_of = np.zeros(n, dtype=np.int64)
    delay_of[sources] = delays
    neg1 = np.full(len(sources), -1, dtype=np.int64)
    by_time: dict[int, list[np.ndarray]] = {}
    started = delays < budget
    for time in np.unique(delays[started]).tolist():
        at_t = sources[started & (delays == time)]
        k = len(at_t)
        by_time[time] = [np.stack([at_t, at_t, neg1[:k], neg1[:k]])]
    for time in range(0, budget + 1):
        batches = by_time.pop(time, None)
        if not batches:
            continue
        node_c, src_c, par_c, pedge_c = np.concatenate(batches, axis=1)
        open_mask = unclaimed[node_c]
        node_c, src_c, par_c, pedge_c = (
            node_c[open_mask],
            src_c[open_mask],
            par_c[open_mask],
            pedge_c[open_mask],
        )
        if node_c.size == 0:
            continue
        order = np.lexsort((pedge_c, par_c, src_c, node_c))
        node_s = node_c[order]
        firsts = np.ones(len(node_s), dtype=bool)
        firsts[1:] = node_s[1:] != node_s[:-1]
        win = order[firsts]
        winners = node_c[win]
        cluster[winners] = src_c[win]
        parent[winners] = par_c[win]
        parent_edge[winners] = pedge_c[win]
        depth[winners] = time - delay_of[src_c[win]]
        unclaimed[winners] = False
        if time + 1 > budget:
            continue
        origin, nbrs, eids = kernels.ragged_rows(csr, winners)
        keep = unclaimed[nbrs]
        if allowed is not None:
            keep &= allowed[eids]
        if np.any(keep):
            push = np.stack(
                [nbrs[keep], cluster[origin[keep]], origin[keep], eids[keep]]
            )
            by_time.setdefault(time + 1, []).append(push)


def split_graph(
    graph: Graph,
    target_radius: int,
    rng: np.random.Generator | int | None = None,
    active_edges: list[int] | None = None,
) -> SplitGraphResult:
    """Decompose ``graph`` into clusters of radius <= target_radius.

    Args:
        graph: Unweighted view of a (multi)graph — capacities ignored.
        target_radius: The ρ parameter. Must be >= 1.
        rng: Randomness source.
        active_edges: If given, BFS may only traverse these edge ids
            (the AKPW iteration restricts to low weight classes);
            other edges are reported as cut if their endpoints separate.

    Returns:
        A :class:`SplitGraphResult`. Every node is assigned a cluster.
    """
    rng = as_generator(rng)
    n = graph.num_nodes
    rho = max(1, int(target_radius))
    log_n = max(1, math.ceil(math.log2(max(n, 2))))

    if active_edges is None:
        allowed = None
    else:
        allowed = np.zeros(graph.num_edges, dtype=bool)
        allowed[active_edges] = True
        if allowed.all():
            allowed = None
    max_delay = rho // (2 * log_n)

    tails, heads = graph.edge_index_arrays()
    if graph.is_small():
        cluster, parent, parent_edge, depth, phases = _split_small(
            graph, rng, rho, log_n, max_delay, allowed
        )
        cluster_arr = np.asarray(cluster, dtype=np.int64)
        cut_edges = np.flatnonzero(
            cluster_arr[tails] != cluster_arr[heads]
        ).tolist()
        return SplitGraphResult(
            cluster=cluster,
            parent=parent,
            parent_edge=parent_edge,
            radius=max(depth) if depth else 0,
            phases=phases,
            cut_edges=cut_edges,
        )
    cluster, parent, parent_edge, depth, phases = _split_large(
        graph, rng, rho, log_n, max_delay, allowed
    )
    cut_edges = np.flatnonzero(cluster[tails] != cluster[heads]).tolist()
    return SplitGraphResult(
        cluster=cluster.tolist(),
        parent=parent.tolist(),
        parent_edge=parent_edge.tolist(),
        radius=int(depth.max()) if n else 0,
        phases=phases,
        cut_edges=cut_edges,
    )


def _split_small(
    graph: Graph,
    rng: np.random.Generator,
    rho: int,
    log_n: int,
    max_delay: int,
    allowed: np.ndarray | None,
) -> tuple[list[int], list[int], list[int], list[int], int]:
    """Phase loop with Python state + sequential-heap ball growing."""
    n = graph.num_nodes
    adjacency = graph.adjacency_lists()
    allowed_list = allowed.tolist() if allowed is not None else None
    cluster = [-1] * n
    parent = [-1] * n
    parent_edge = [-1] * n
    depth = [0] * n
    unclaimed = [True] * n
    remaining = list(range(n))
    phases = 0
    for t in range(1, 2 * log_n + 1):
        if not remaining:
            break
        probability = min(1.0, 2 ** (t / 2.0) / n)
        picks = (rng.random(len(remaining)) < probability).tolist()
        sources = [v for v, p in zip(remaining, picks) if p]
        if not sources:
            sources = [remaining[rng.integers(0, len(remaining))]]
        if max_delay == 0:
            delays: list[int] = [0] * len(sources)
        else:
            delays = rng.integers(0, max_delay + 1, size=len(sources)).tolist()
        budget = max(1, int(rho * (1.0 - (t - 1) / (2.0 * log_n))))
        _grow_balls_heap(
            adjacency, sources, delays, budget, allowed_list,
            cluster, parent, parent_edge, depth, unclaimed,
        )
        remaining = [v for v in remaining if unclaimed[v]]
        phases += budget
    for v in remaining:
        cluster[v] = v
    return cluster, parent, parent_edge, depth, phases


def _split_large(
    graph: Graph,
    rng: np.random.Generator,
    rho: int,
    log_n: int,
    max_delay: int,
    allowed: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Phase loop with NumPy state + frontier-at-a-time ball growing."""
    n = graph.num_nodes
    csr = graph.csr()
    cluster = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    unclaimed = np.ones(n, dtype=bool)
    phases = 0
    for t in range(1, 2 * log_n + 1):
        if not unclaimed.any():
            break
        vt = np.flatnonzero(unclaimed)
        sources, delays = _sample_sources(rng, vt, t, n, max_delay)
        budget = max(1, int(rho * (1.0 - (t - 1) / (2.0 * log_n))))
        _grow_balls_frontier(
            csr, sources, delays, budget, allowed,
            cluster, parent, parent_edge, depth, unclaimed,
        )
        phases += budget
    rest = np.flatnonzero(unclaimed)
    cluster[rest] = rest
    return cluster, parent, parent_edge, depth, phases
