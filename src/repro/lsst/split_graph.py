"""Algorithm SplitGraph (paper Figure 4): low-diameter decomposition.

Given an unweighted (multi)graph and a target radius ρ, SplitGraph
partitions the nodes into clusters of radius at most ρ such that, in
expectation, only an O(log N / ρ) fraction of edges is cut. It works in
2·log N phases: phase t samples a geometrically growing set of sources
S_t, each source waits a random delay and then grows a BFS ball; a node
joins the cluster of the first BFS that reaches it (ties by source id).

This is the engine of the AKPW low-stretch spanning tree (§7) and runs
in O(ρ log N) simulated rounds; the distributed round cost is charged
via :meth:`repro.congest.cost.CostModel.lsst` using the *measured*
phase count this implementation reports.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.util.rng import as_generator

__all__ = ["SplitGraphResult", "split_graph"]


@dataclass
class SplitGraphResult:
    """Outcome of a SplitGraph decomposition.

    Attributes:
        cluster: ``cluster[v]`` = cluster id of node v (cluster ids are
            the source node ids).
        parent: BFS-tree parent of v inside its cluster (-1 at sources).
        parent_edge: Graph edge id to the parent (-1 at sources).
        radius: Max BFS depth realized in any cluster.
        phases: Number of sequential BFS phases executed — the quantity
            the round-cost model charges (each phase is one simulated
            cluster-graph round, Lemma 5.1).
        cut_edges: Edge ids whose endpoints landed in different clusters.
    """

    cluster: list[int]
    parent: list[int]
    parent_edge: list[int]
    radius: int
    phases: int
    cut_edges: list[int]


def split_graph(
    graph: Graph,
    target_radius: int,
    rng: np.random.Generator | int | None = None,
    active_edges: list[int] | None = None,
) -> SplitGraphResult:
    """Decompose ``graph`` into clusters of radius <= target_radius.

    Args:
        graph: Unweighted view of a (multi)graph — capacities ignored.
        target_radius: The ρ parameter. Must be >= 1.
        rng: Randomness source.
        active_edges: If given, BFS may only traverse these edge ids
            (the AKPW iteration restricts to low weight classes);
            other edges are reported as cut if their endpoints separate.

    Returns:
        A :class:`SplitGraphResult`. Every node is assigned a cluster.
    """
    rng = as_generator(rng)
    n = graph.num_nodes
    rho = max(1, int(target_radius))
    log_n = max(1, math.ceil(math.log2(max(n, 2))))

    if active_edges is None:
        allowed = None
    else:
        allowed = np.zeros(graph.num_edges, dtype=bool)
        allowed[active_edges] = True

    cluster = [-1] * n
    parent = [-1] * n
    parent_edge = [-1] * n
    depth = [0] * n
    remaining = set(range(n))
    phases = 0
    # Figure 4, step 2c: delays are uniform in [0, rho/(2 log N)]; for
    # small rho this is always 0, so every sampled source starts
    # immediately (which guarantees progress).
    max_delay = rho // (2 * log_n)

    for t in range(1, 2 * log_n + 1):
        if not remaining:
            break
        vt = sorted(remaining)
        # Source density grows by 2^{t/2} per phase (Figure 4, step 2a):
        # each still-uncovered node becomes a source independently with
        # probability min(1, 2^{t/2}/n), reaching 1 by the final phase
        # t = 2 log n, which guarantees full coverage.
        probability = min(1.0, 2 ** (t / 2.0) / n)
        picks = rng.random(len(vt)) < probability
        sources = [v for v, picked in zip(vt, picks) if picked]
        if not sources:
            sources = [int(rng.choice(vt))]
        budget = max(1, int(rho * (1.0 - (t - 1) / (2.0 * log_n))))
        delays = {s: int(rng.integers(0, max_delay + 1)) for s in sources}

        # Delayed multi-source BFS over `remaining`, restricted to
        # active edges. Priority: (arrival_time, source_id) — the first
        # BFS to visit wins, ties broken by source id (Figure 4, 2e).
        heap: list[tuple[int, int, int, int, int]] = []
        for s in sources:
            if delays[s] < budget:
                heapq.heappush(heap, (delays[s], s, s, -1, -1))
        claimed: dict[int, tuple[int, int, int, int]] = {}
        while heap:
            time, src, node, par, pedge = heapq.heappop(heap)
            if node in claimed or node not in remaining:
                continue
            claimed[node] = (src, par, pedge, time - delays[src])
            for neighbor, eid in graph.neighbors(node):
                if allowed is not None and not allowed[eid]:
                    continue
                if neighbor in claimed or neighbor not in remaining:
                    continue
                # Source s is delayed by delays[s] and then runs for
                # budget - delays[s] steps, i.e. until global time
                # `budget` — uniform across sources (Figure 4, 2d).
                if time + 1 <= budget:
                    heapq.heappush(heap, (time + 1, src, neighbor, node, eid))
        for node, (src, par, pedge, d) in claimed.items():
            cluster[node] = src
            parent[node] = par
            parent_edge[node] = pedge
            depth[node] = d
            remaining.discard(node)
        phases += budget
    # Any stragglers become singleton clusters (can only happen when a
    # node has no allowed edges to sampled sources).
    for node in list(remaining):
        cluster[node] = node
        remaining.discard(node)

    cut_edges = [
        e.id for e in graph.edges() if cluster[e.u] != cluster[e.v]
    ]
    return SplitGraphResult(
        cluster=cluster,
        parent=parent,
        parent_edge=parent_edge,
        radius=max(depth) if depth else 0,
        phases=phases,
        cut_edges=cut_edges,
    )
