"""Random tree decomposition (paper Lemma 8.2 / Lemma 9.1).

Sampling each tree edge (c, parent(c)) into a removal set R with
probability ``min(1, |c| / √n)`` splits a rooted tree into O(√n)
components of depth Õ(√n) w.h.p. The paper uses this to keep cluster
trees shallow (invariant 2 of Section 4) and to pipeline tree
aggregations (Lemma 8.3, Lemma 9.1); Experiment E8 verifies both
bounds empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.trees import RootedTree
from repro.util.rng import as_generator

__all__ = ["TreeDecomposition", "decompose_tree"]


@dataclass
class TreeDecomposition:
    """A forest obtained by removing sampled tree edges.

    Attributes:
        removed: Child node ids whose parent edge was removed.
        component: ``component[v]`` = component index of node v.
        component_roots: Root node of every component (the original
            root, or a child whose parent edge was cut).
        depths: Depth of every node within its component.
    """

    removed: list[int]
    component: list[int]
    component_roots: list[int]
    depths: list[int]

    @property
    def num_components(self) -> int:
        return len(self.component_roots)

    @property
    def max_depth(self) -> int:
        return max(self.depths) if self.depths else 0


def decompose_tree(
    tree: RootedTree,
    rng: np.random.Generator | int | None = None,
    weights: Sequence[float] | None = None,
    scale: float | None = None,
) -> TreeDecomposition:
    """Decompose a rooted tree per Lemma 8.2.

    Args:
        tree: The tree to decompose.
        rng: Randomness source.
        weights: Per-node weight |c| (cluster sizes in the paper's
            setting); defaults to 1 per node.
        scale: The √n divisor; defaults to ``sqrt(total weight)``.

    Returns:
        A :class:`TreeDecomposition` with, w.h.p., O(√n) components of
        depth O(√n log n) (weighted).
    """
    rng = as_generator(rng)
    n = tree.num_nodes
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
    if scale is None:
        scale = math.sqrt(float(weights.sum()))
    scale = max(scale, 1.0)

    parent = np.asarray(tree.parent, dtype=np.int64)
    nonroot = np.flatnonzero(parent >= 0)
    probability = np.minimum(1.0, weights[nonroot] / scale)
    removed_arr = nonroot[rng.random(len(nonroot)) < probability]

    # Each node's component root is its nearest ancestor (inclusive)
    # whose parent edge was removed, or the tree root — found for all
    # nodes at once by pointer jumping over the parent array.
    stop = np.zeros(n, dtype=bool)
    stop[removed_arr] = True
    stop[tree.root] = True
    anchor = np.where(stop, np.arange(n, dtype=np.int64), parent)
    while True:
        hop = anchor[anchor]
        if np.array_equal(hop, anchor):
            break
        anchor = hop
    # Number components by first encounter in topological order (DFS
    # preorder since the array-native substrate; the legacy BFS order
    # numbered them differently — the partition itself, `removed`, and
    # all depth/count statistics are unchanged, only the arbitrary
    # component ids relabel).
    roots = np.flatnonzero(stop)
    roots = roots[np.argsort(tree.euler_tin[roots], kind="stable")]
    comp_of_root = np.empty(n, dtype=np.int64)
    comp_of_root[roots] = np.arange(len(roots), dtype=np.int64)
    component = comp_of_root[anchor]
    depths = tree.depths - tree.depths[anchor]
    return TreeDecomposition(
        removed=removed_arr.tolist(),
        component=component.tolist(),
        component_roots=roots.tolist(),
        depths=depths.tolist(),
    )
