"""Distributed cluster graphs (paper Definition 5.1).

A cluster graph partitions the network nodes into clusters, each with a
leader and a rooted spanning tree inside the cluster, plus a multigraph
of inter-cluster edges where every cluster edge is realized by a
*physical* edge of the underlying network (the ψ map, condition IV).
The recursive j-tree hierarchy (Section 8) maintains exactly this
structure level by level; :class:`ClusterGraph` is its concrete
representation, and :meth:`merge_along_forest` performs the level
transition (new clusters = forest components, internal trees spliced
together through the physical edges realizing forest edges).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError, TreeError
from repro.graphs.graph import Graph

__all__ = ["ClusterGraph"]


@dataclass
class ClusterGraph:
    """Definition 5.1, centrally represented.

    Attributes:
        base: The underlying network graph G.
        assignment: ``assignment[v]`` = cluster index of network node v.
        parent: ``parent[v]`` = parent *network node* of v inside its
            cluster tree (-1 if v is its cluster's root/leader).
        roots: ``roots[c]`` = root network node (leader) of cluster c.
        quotient: The inter-cluster multigraph (one node per cluster).
        edge_origin: ``edge_origin[j]`` = base-graph edge id realizing
            quotient edge j (the ψ map).
    """

    base: Graph
    assignment: list[int]
    parent: list[int]
    roots: list[int]
    quotient: Graph
    edge_origin: list[int]

    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, graph: Graph, share_quotient: bool = False) -> "ClusterGraph":
        """The level-0 cluster graph: every node its own cluster, the
        quotient is (a copy of) the graph itself.

        Args:
            graph: The base network graph.
            share_quotient: Use ``graph`` itself as the level-0 quotient
                instead of a copy. The hierarchy does this for every
                sample — nothing in the recursion mutates a core, and
                sharing keeps the input graph's cached CSR / adjacency /
                connectivity warm across all O(log n) samples. Callers
                that mutate the quotient must keep the copying default.
        """
        return cls(
            base=graph,
            assignment=list(range(graph.num_nodes)),
            parent=[-1] * graph.num_nodes,
            roots=list(range(graph.num_nodes)),
            quotient=graph if share_quotient else graph.copy(),
            edge_origin=list(range(graph.num_edges)),
        )

    @property
    def num_clusters(self) -> int:
        return self.quotient.num_nodes

    def cluster_members(self) -> list[list[int]]:
        """Return the member network nodes of every cluster."""
        members: list[list[int]] = [[] for _ in range(self.num_clusters)]
        for v, c in enumerate(self.assignment):
            members[c].append(v)
        return members

    def cluster_tree_depth(self) -> int:
        """Maximum depth of any cluster's internal tree (invariant 2 of
        Section 4 tracks this as Õ(√n))."""
        depth = [0] * self.base.num_nodes
        # parent pointers form forests; compute depths iteratively.
        order: list[int] = []
        children: list[list[int]] = [[] for _ in range(self.base.num_nodes)]
        for v, p in enumerate(self.parent):
            if p >= 0:
                children[p].append(v)
        stack = [r for r in self.roots]
        while stack:
            node = stack.pop()
            order.append(node)
            for ch in children[node]:
                depth[ch] = depth[node] + 1
                stack.append(ch)
        if len(order) != self.base.num_nodes:
            raise TreeError("cluster trees do not cover all nodes")
        return max(depth) if depth else 0

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all four conditions of Definition 5.1.

        Raises:
            GraphError / TreeError: On any violated condition.
        """
        n = self.base.num_nodes
        if len(self.assignment) != n or len(self.parent) != n:
            raise GraphError("assignment/parent must cover every node")
        # (I) clusters partition V — assignment is total by construction;
        # check cluster ids are exactly 0..N-1.
        used = set(self.assignment)
        if used != set(range(self.num_clusters)):
            raise GraphError("cluster ids must be exactly 0..N-1")
        # (II) one leader per cluster, inside the cluster.
        if len(self.roots) != self.num_clusters:
            raise GraphError("roots must have one entry per cluster")
        for c, r in enumerate(self.roots):
            if self.assignment[r] != c:
                raise GraphError(f"root {r} of cluster {c} not a member")
            if self.parent[r] != -1:
                raise TreeError(f"root {r} of cluster {c} has a parent")
        # (III) cluster trees: parents are members of the same cluster,
        # connected via base-graph edges, acyclic, spanning the cluster.
        base_pairs = {
            (min(e.u, e.v), max(e.u, e.v)) for e in self.base.edges()
        }
        seen_from_root = [False] * n
        children: list[list[int]] = [[] for _ in range(n)]
        for v, p in enumerate(self.parent):
            if p < 0:
                continue
            if self.assignment[p] != self.assignment[v]:
                raise TreeError(
                    f"parent pointer {v}->{p} crosses clusters"
                )
            if (min(v, p), max(v, p)) not in base_pairs:
                raise TreeError(f"tree edge ({v},{p}) not a graph edge")
            children[p].append(v)
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            if seen_from_root[node]:
                raise TreeError("cluster trees contain a cycle")
            seen_from_root[node] = True
            stack.extend(children[node])
        if not all(seen_from_root):
            raise TreeError("cluster trees do not span their clusters")
        # (IV) ψ maps each quotient edge to a base edge between the
        # right clusters.
        if len(self.edge_origin) != self.quotient.num_edges:
            raise GraphError("edge_origin must cover every quotient edge")
        for j in range(self.quotient.num_edges):
            cu, cv = self.quotient.endpoints(j)
            u, v = self.base.endpoints(self.edge_origin[j])
            if {self.assignment[u], self.assignment[v]} != {cu, cv}:
                raise GraphError(
                    f"quotient edge {j} maps to base edge between wrong "
                    f"clusters"
                )

    # ------------------------------------------------------------------
    def reroot_cluster(self, cluster: int, new_root: int) -> None:
        """Re-root one cluster's internal tree at ``new_root`` (a member)
        by reversing the parent pointers along the old-root path."""
        if self.assignment[new_root] != cluster:
            raise GraphError(
                f"node {new_root} is not in cluster {cluster}"
            )
        path = [new_root]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        for child, parent in zip(path, path[1:]):
            self.parent[parent] = child
        self.parent[new_root] = -1
        self.roots[cluster] = new_root

    def merge_along_forest(
        self,
        forest_parent: list[int],
        forest_edge: list[int],
        new_quotient: Graph,
        new_edge_origin: list[int],
        component_of: list[int],
    ) -> "ClusterGraph":
        """Build the next-level cluster graph.

        Args:
            forest_parent: Per current cluster, its parent cluster in
                the sampled j-tree's forest (-1 at component roots —
                the portals).
            forest_edge: Per current cluster, the *quotient* edge id
                realizing the edge to the forest parent (-1 at roots).
            new_quotient: Core multigraph over the new clusters.
            new_edge_origin: Base-graph edge id for each core edge.
            component_of: Per current cluster, its new cluster index.

        Returns:
            The next-level :class:`ClusterGraph`. The internal trees of
            merged clusters are spliced via the physical edges realizing
            the forest edges (re-rooting child clusters as needed).
        """
        parent = list(self.parent)
        assignment = [component_of[c] for c in self.assignment]
        num_new = new_quotient.num_nodes
        roots = [-1] * num_new
        # Splice each non-root cluster into its forest parent.
        scratch = ClusterGraph(
            base=self.base,
            assignment=list(self.assignment),
            parent=parent,
            roots=list(self.roots),
            quotient=self.quotient,
            edge_origin=self.edge_origin,
        )
        for c in range(self.num_clusters):
            if forest_parent[c] < 0:
                roots[component_of[c]] = scratch.roots[c]
                continue
            qe = forest_edge[c]
            u, v = self.base.endpoints(self.edge_origin[qe])
            # Orient: u must lie in cluster c, v in the parent cluster.
            if self.assignment[u] != c:
                u, v = v, u
            if (
                self.assignment[u] != c
                or self.assignment[v] != forest_parent[c]
            ):
                raise GraphError(
                    f"forest edge for cluster {c} not realized by a "
                    "physical edge between the right clusters"
                )
            scratch.reroot_cluster(c, u)
            scratch.parent[u] = v
        if any(r < 0 for r in roots):
            raise GraphError("some new cluster has no root (no portal)")
        return ClusterGraph(
            base=self.base,
            assignment=assignment,
            parent=scratch.parent,
            roots=roots,
            quotient=new_quotient,
            edge_origin=new_edge_origin,
        )
