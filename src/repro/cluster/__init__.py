"""Cluster graphs (paper Section 5) and tree decompositions (Lemma 8.2)."""

from repro.cluster.cluster_graph import ClusterGraph
from repro.cluster.decomposition import TreeDecomposition, decompose_tree

__all__ = ["ClusterGraph", "TreeDecomposition", "decompose_tree"]
